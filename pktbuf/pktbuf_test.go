package pktbuf

import (
	"testing"
)

func TestNewValidation(t *testing.T) {
	if _, err := New(Config{}); err == nil {
		t.Error("zero config accepted")
	}
	if _, err := New(Config{Queues: 4, LineRate: OC768, Granularity: 3}); err == nil {
		t.Error("non-divisor granularity accepted")
	}
}

func TestRoundTrip(t *testing.T) {
	buf, err := New(Config{Queues: 8, LineRate: OC768, Granularity: 2, Banks: 64})
	if err != nil {
		t.Fatal(err)
	}
	// Feed 8 cells to queue 5.
	for i := 0; i < 8; i++ {
		if _, err := buf.Tick(Input{Arrival: 5, Request: None}); err != nil {
			t.Fatal(err)
		}
	}
	if got := buf.Len(5); got != 8 {
		t.Fatalf("Len = %d, want 8", got)
	}
	// Request them all; run until delivered.
	var got []Cell
	for slot := 0; slot < 5000 && len(got) < 8; slot++ {
		in := Input{Arrival: None, Request: None}
		if buf.Requestable(5) > 0 {
			in.Request = 5
		}
		out, err := buf.Tick(in)
		if err != nil {
			t.Fatal(err)
		}
		if out.Ok {
			got = append(got, out.Delivered)
		}
	}
	if len(got) != 8 {
		t.Fatalf("delivered %d cells", len(got))
	}
	for i, c := range got {
		if c.Queue != 5 || c.Seq != uint64(i) {
			t.Errorf("cell %d = %+v", i, c)
		}
	}
	st := buf.Stats()
	if !st.Clean() || st.Deliveries != 8 || st.Arrivals != 8 {
		t.Errorf("stats = %+v", st)
	}
	if buf.Now() == 0 {
		t.Error("Now did not advance")
	}
}

func TestRADSDefaultGranularity(t *testing.T) {
	buf, err := New(Config{Queues: 4, LineRate: OC768, Banks: 64})
	if err != nil {
		t.Fatal(err)
	}
	// Granularity 0 means b=B (RADS); just exercise a few slots.
	for i := 0; i < 100; i++ {
		if _, err := buf.Tick(Input{Arrival: Queue(i % 4), Request: None}); err != nil {
			t.Fatal(err)
		}
	}
	if buf.Stats().Arrivals != 100 {
		t.Error("arrivals not counted")
	}
}

func TestDimensionFor(t *testing.T) {
	s, err := DimensionFor(Config{Queues: 512, LineRate: OC3072, Granularity: 2})
	if err != nil {
		t.Fatal(err)
	}
	if s.GranularityB != 32 {
		t.Errorf("B = %d, want 32", s.GranularityB)
	}
	if s.Lookahead != 512+1 {
		t.Errorf("Lookahead = %d, want 513", s.Lookahead)
	}
	if s.RequestRegister != 1024 {
		t.Errorf("RR = %d, want 1024", s.RequestRegister)
	}
	if s.HeadSRAMCells <= 0 || s.TailSRAMCells <= 0 || s.DelaySlots <= s.Lookahead {
		t.Errorf("sizing = %+v", s)
	}
	if _, err := DimensionFor(Config{Queues: 0}); err == nil {
		t.Error("invalid config accepted")
	}
}

func TestStatsClean(t *testing.T) {
	s := Stats{}
	if !s.Clean() {
		t.Error("zero stats not clean")
	}
	s.Misses = 1
	if s.Clean() {
		t.Error("missed stats clean")
	}
}

func TestLinkedListOrganization(t *testing.T) {
	buf, err := New(Config{Queues: 4, LineRate: OC768, Granularity: 2, Banks: 64,
		Organization: UnifiedLinkedList})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 200; i++ {
		in := Input{Arrival: Queue(i % 4), Request: None}
		if buf.Requestable(Queue(i%4)) > 0 {
			in.Request = Queue(i % 4)
		}
		if _, err := buf.Tick(in); err != nil {
			t.Fatal(err)
		}
	}
	if !buf.Stats().Clean() {
		t.Errorf("stats = %+v", buf.Stats())
	}
}

func TestRenamingConfig(t *testing.T) {
	buf, err := New(Config{Queues: 4, LineRate: OC768, Granularity: 2, Banks: 64,
		Renaming: true, BankCapacityBlocks: 8})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 500; i++ {
		if _, err := buf.Tick(Input{Arrival: 0, Request: None}); err != nil {
			break // bounded DRAM eventually backpressures; fine
		}
	}
	if buf.Stats().Arrivals == 0 {
		t.Error("nothing accepted")
	}
}
