// Package trace records and replays slot-level workload traces
// through the public API. The paper's evaluation has no public traffic
// traces, so experiments are driven by synthetic generators; this
// package makes any such run reproducible and portable: capture the
// exact per-slot stimulus once, replay it against any buffer
// configuration or implementation revision.
//
// The format is line-oriented text, one slot per line (shared with
// the internal tooling):
//
//	# comment / header
//	a3 r7     arrival for queue 3, request for queue 7
//	a0        arrival only
//	r2        request only
//	.         idle slot
//
// Lines are ordered; slot numbers are implicit.
package trace

import (
	"io"

	"repro/internal/cell"
	itrace "repro/internal/trace"
	"repro/pktbuf"
	"repro/pktbuf/sim"
)

// Event is the stimulus of one slot.
type Event struct {
	// Arrival and Request are queue ids, pktbuf.None for none.
	Arrival, Request pktbuf.Queue
}

// Trace is an in-memory sequence of per-slot events.
type Trace struct {
	Events []Event
}

// ErrFormat reports a malformed trace line.
var ErrFormat = itrace.ErrFormat

// Write serializes the trace.
func (t *Trace) Write(w io.Writer) error {
	events := make([]itrace.Event, len(t.Events))
	for i, e := range t.Events {
		events[i] = itrace.Event{
			Arrival: cell.QueueID(e.Arrival),
			Request: cell.QueueID(e.Request),
		}
	}
	inner := itrace.Trace{Events: events}
	return inner.Write(w)
}

// Read parses a trace.
func Read(r io.Reader) (*Trace, error) {
	inner, err := itrace.Read(r)
	if err != nil {
		return nil, err
	}
	t := &Trace{Events: make([]Event, len(inner.Events))}
	for i, e := range inner.Events {
		t.Events[i] = Event{
			Arrival: pktbuf.Queue(e.Arrival),
			Request: pktbuf.Queue(e.Request),
		}
	}
	return t, nil
}

// Capture runs the generators for the given number of slots against a
// live view and records the stimulus they produce. The view is needed
// because request policies are state-dependent; use it with a real
// buffer run (see Recorder) or a sim.View adapter.
func Capture(arr sim.ArrivalProcess, req sim.RequestPolicy, v sim.View, slots int) *Trace {
	t := &Trace{Events: make([]Event, 0, slots)}
	for s := 0; s < slots; s++ {
		t.Events = append(t.Events, Event{
			Arrival: arr.Next(uint64(s)),
			Request: req.Next(uint64(s), v),
		})
	}
	return t
}

// Recorder wraps an ArrivalProcess/RequestPolicy pair, transparently
// recording everything they emit while a sim.Runner drives them.
type Recorder struct {
	Arr sim.ArrivalProcess
	Req sim.RequestPolicy
	t   Trace
	// pending pairs the two halves of one slot.
	haveArrival bool
	arrival     pktbuf.Queue
}

// Next implements sim.ArrivalProcess.
func (r *Recorder) Next(slot uint64) pktbuf.Queue {
	q := r.Arr.Next(slot)
	r.arrival, r.haveArrival = q, true
	return q
}

// NextRequest records the request half of a slot; Recorder itself is
// used as both generator halves (see Halves).
func (r *Recorder) NextRequest(slot uint64, v sim.View) pktbuf.Queue {
	q := r.Req.Next(slot, v)
	a := pktbuf.None
	if r.haveArrival {
		a, r.haveArrival = r.arrival, false
	}
	r.t.Events = append(r.t.Events, Event{Arrival: a, Request: q})
	return q
}

// Trace returns the recorded trace so far.
func (r *Recorder) Trace() *Trace { return &r.t }

// requestHalf adapts Recorder's request side to sim.RequestPolicy.
type requestHalf struct{ r *Recorder }

func (h requestHalf) Next(slot uint64, v sim.View) pktbuf.Queue {
	return h.r.NextRequest(slot, v)
}

// Halves returns the two generator halves to plug into a sim.Runner.
func (r *Recorder) Halves() (sim.ArrivalProcess, sim.RequestPolicy) {
	return r, requestHalf{r}
}

// Replayer replays a trace as a sim.ArrivalProcess / sim.RequestPolicy
// pair. Requests are replayed verbatim: the trace must have been
// recorded against a behaviourally identical buffer (same acceptance
// decisions), which holds for any unbounded-DRAM configuration.
type Replayer struct {
	t   *Trace
	pos int
}

// NewReplayer wraps a trace.
func NewReplayer(t *Trace) *Replayer { return &Replayer{t: t} }

// Next implements sim.ArrivalProcess.
func (r *Replayer) Next(uint64) pktbuf.Queue {
	if r.pos >= len(r.t.Events) {
		return pktbuf.None
	}
	return r.t.Events[r.pos].Arrival
}

// request advances the slot cursor (the request half runs second in
// the Runner's slot loop).
func (r *Replayer) request(uint64, sim.View) pktbuf.Queue {
	if r.pos >= len(r.t.Events) {
		return pktbuf.None
	}
	q := r.t.Events[r.pos].Request
	r.pos++
	return q
}

// Halves returns the replaying generator pair.
func (r *Replayer) Halves() (sim.ArrivalProcess, sim.RequestPolicy) {
	return r, replayRequest{r}
}

type replayRequest struct{ r *Replayer }

func (h replayRequest) Next(slot uint64, v sim.View) pktbuf.Queue {
	return h.r.request(slot, v)
}
