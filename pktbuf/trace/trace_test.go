package trace_test

import (
	"bytes"
	"errors"
	"strings"
	"testing"

	"repro/pktbuf"
	"repro/pktbuf/sim"
	"repro/pktbuf/trace"
)

func TestWriteReadRoundTrip(t *testing.T) {
	in := &trace.Trace{Events: []trace.Event{
		{Arrival: 3, Request: 7},
		{Arrival: 0, Request: pktbuf.None},
		{Arrival: pktbuf.None, Request: 2},
		{Arrival: pktbuf.None, Request: pktbuf.None},
	}}
	var buf bytes.Buffer
	if err := in.Write(&buf); err != nil {
		t.Fatal(err)
	}
	out, err := trace.Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(out.Events) != len(in.Events) {
		t.Fatalf("round trip: %d events, want %d", len(out.Events), len(in.Events))
	}
	for i := range in.Events {
		if out.Events[i] != in.Events[i] {
			t.Errorf("event %d = %+v, want %+v", i, out.Events[i], in.Events[i])
		}
	}
}

func TestReadRejectsMalformed(t *testing.T) {
	for _, text := range []string{"x3\n", "a\n", "a-2\n", "abc def\n"} {
		if _, err := trace.Read(strings.NewReader(text)); !errors.Is(err, trace.ErrFormat) {
			t.Errorf("Read(%q) err = %v, want ErrFormat", text, err)
		}
	}
}

func newBuffer(t testing.TB) *pktbuf.Buffer {
	t.Helper()
	buf, err := pktbuf.New(pktbuf.Config{
		Queues: 8, LineRate: pktbuf.OC768, Granularity: 2, Banks: 64,
	})
	if err != nil {
		t.Fatal(err)
	}
	return buf
}

// TestRecordReplay records a live run from slot 0 and replays it
// against a fresh identical buffer: the statistics must match
// exactly.
func TestRecordReplay(t *testing.T) {
	const slots = 20000
	arr, _ := sim.NewUniformArrivals(8, 0.7, 5)
	req, _ := sim.NewRoundRobinDrain(8)
	rec := &trace.Recorder{Arr: arr, Req: req}
	recArr, recReq := rec.Halves()
	orig := newBuffer(t)
	r := &sim.Runner{Buffer: orig, Arrivals: recArr, Requests: recReq}
	want, err := r.Run(slots)
	if err != nil {
		t.Fatal(err)
	}
	if got := len(rec.Trace().Events); got != slots {
		t.Fatalf("recorded %d events, want %d", got, slots)
	}

	var wire bytes.Buffer
	if err := rec.Trace().Write(&wire); err != nil {
		t.Fatal(err)
	}
	tr, err := trace.Read(&wire)
	if err != nil {
		t.Fatal(err)
	}
	repArr, repReq := trace.NewReplayer(tr).Halves()
	replayed := newBuffer(t)
	r2 := &sim.Runner{Buffer: replayed, Arrivals: repArr, Requests: repReq}
	got, err := r2.Run(slots)
	if err != nil {
		t.Fatal(err)
	}
	if got != want {
		t.Errorf("replayed run diverges:\nwant %+v\ngot  %+v", want, got)
	}
}

// TestReplayerExhausted: past the end of the trace the replayer goes
// idle instead of repeating.
func TestReplayerExhausted(t *testing.T) {
	tr := &trace.Trace{Events: []trace.Event{{Arrival: 1, Request: pktbuf.None}}}
	arr, req := trace.NewReplayer(tr).Halves()
	buf := newBuffer(t)
	r := &sim.Runner{Buffer: buf, Arrivals: arr, Requests: req}
	res, err := r.Run(100)
	if err != nil {
		t.Fatal(err)
	}
	if res.Stats.Arrivals != 1 || res.Stats.Requests != 0 {
		t.Errorf("stats = %+v, want exactly one arrival", res.Stats)
	}
}

func TestCapture(t *testing.T) {
	arr, _ := sim.NewRoundRobinArrivals(4, 1.0)
	tr := trace.Capture(arr, sim.NewIdleRequests(), newBuffer(t), 16)
	if len(tr.Events) != 16 {
		t.Fatalf("captured %d events, want 16", len(tr.Events))
	}
	for i, e := range tr.Events {
		if e.Arrival != pktbuf.Queue(i%4) || e.Request != pktbuf.None {
			t.Errorf("event %d = %+v", i, e)
		}
	}
}
