package pktbuf

import "testing"

func TestEstimateTechnologyPaperEndpoints(t *testing.T) {
	// RADS at OC-3072 with 512 queues: infeasible (§7.2).
	rads, err := EstimateTechnology(Config{Queues: 512, LineRate: OC3072})
	if err != nil {
		t.Fatal(err)
	}
	if rads.Feasible {
		t.Errorf("RADS OC-3072 feasible at %.2f ns (budget %.1f)", rads.AccessNS, rads.BudgetNS)
	}
	// CFDS b=2: feasible (§8.3).
	cfds, err := EstimateTechnology(Config{Queues: 512, LineRate: OC3072, Granularity: 2})
	if err != nil {
		t.Fatal(err)
	}
	if !cfds.Feasible {
		t.Errorf("CFDS b=2 infeasible at %.2f ns", cfds.AccessNS)
	}
	if cfds.AreaCM2 >= rads.AreaCM2 {
		t.Errorf("CFDS area %.2f not below RADS %.2f", cfds.AreaCM2, rads.AreaCM2)
	}
	// OC-768 RADS: feasible in either organization (§7.2).
	for _, org := range []Organization{GlobalCAM, UnifiedLinkedList} {
		e, err := EstimateTechnology(Config{Queues: 128, LineRate: OC768, Organization: org})
		if err != nil {
			t.Fatal(err)
		}
		if !e.Feasible {
			t.Errorf("OC-768 org %v infeasible at %.2f ns", org, e.AccessNS)
		}
	}
	if _, err := EstimateTechnology(Config{Queues: 0}); err == nil {
		t.Error("invalid config accepted")
	}
}

func TestOptimalGranularity(t *testing.T) {
	// OC-3072, 512 queues: the paper's interior optimum (2 or 4).
	b := OptimalGranularity(512, OC3072, GlobalCAM)
	if b != 2 && b != 4 {
		t.Errorf("optimal b = %d, want 2 or 4", b)
	}
	// OC-768: every granularity is feasible, and the lookahead term
	// Q(b−1) dominates the delay, so the finest granularity wins.
	if b := OptimalGranularity(128, OC768, GlobalCAM); b != 1 {
		t.Errorf("OC-768 optimal b = %d, want 1 (all feasible; smallest lookahead)", b)
	}
}
