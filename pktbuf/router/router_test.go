package router_test

import (
	"bytes"
	"errors"
	"math/rand"
	"testing"

	"repro/pktbuf"
	"repro/pktbuf/packet"
	"repro/pktbuf/router"
)

func testConfig(ports, classes, workers int) router.Config {
	return router.Config{
		Ports:   ports,
		Classes: classes,
		Workers: workers,
		Buffer: pktbuf.Config{
			LineRate:    pktbuf.OC768,
			Granularity: 2,
			Banks:       16,
		},
	}
}

func mustEngine(t *testing.T, cfg router.Config) *router.Engine {
	t.Helper()
	e, err := router.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { e.Close() })
	return e
}

// TestErrorTaxonomy: every engine error is a typed sentinel reachable
// with errors.Is, and config rejections wrap pktbuf.ErrBadConfig.
func TestErrorTaxonomy(t *testing.T) {
	if _, err := router.New(router.Config{Ports: 0}); !errors.Is(err, pktbuf.ErrBadConfig) {
		t.Errorf("Ports=0: err = %v, want ErrBadConfig", err)
	}
	if _, err := router.New(router.Config{Ports: 2, Classes: -1}); !errors.Is(err, pktbuf.ErrBadConfig) {
		t.Errorf("Classes=-1: err = %v, want ErrBadConfig", err)
	}
	// Buffer template rejections propagate the pktbuf taxonomy.
	bad := testConfig(2, 1, 1)
	bad.Buffer.LineRate = pktbuf.LineRate(99)
	if _, err := router.New(bad); !errors.Is(err, pktbuf.ErrBadConfig) {
		t.Errorf("bad LineRate: err = %v, want ErrBadConfig", err)
	}
	bad = testConfig(2, 1, 1)
	bad.Buffer.Granularity = 3 // does not divide B
	if _, err := router.New(bad); !errors.Is(err, pktbuf.ErrBadConfig) {
		t.Errorf("bad Granularity: err = %v, want ErrBadConfig", err)
	}

	e := mustEngine(t, testConfig(2, 1, 1))
	// Out-of-range VOQ arguments map to pktbuf.None, which Offer
	// rejects — never a silent alias of another output's queue.
	for _, bad := range [][2]int{{2, 0}, {-1, 0}, {0, 1}, {0, -1}} {
		if q := e.VOQ(bad[0], bad[1]); q != pktbuf.None {
			t.Errorf("VOQ(%d,%d) = %d, want None", bad[0], bad[1], q)
		}
	}
	if err := e.Offer(0, packet.Packet{Flow: e.VOQ(2, 0)}); !errors.Is(err, router.ErrBadFlow) {
		t.Errorf("out-of-range VOQ offer: err = %v, want ErrBadFlow", err)
	}
	if err := e.Offer(5, packet.Packet{Flow: 0}); !errors.Is(err, router.ErrBadPort) {
		t.Errorf("err = %v, want ErrBadPort", err)
	}
	if err := e.Offer(0, packet.Packet{Flow: 99}); !errors.Is(err, router.ErrBadFlow) {
		t.Errorf("err = %v, want ErrBadFlow", err)
	}
	if err := e.Offer(0, packet.Packet{Flow: -1}); !errors.Is(err, router.ErrBadFlow) {
		t.Errorf("err = %v, want ErrBadFlow", err)
	}

	capped := testConfig(2, 1, 1)
	capped.IngressCap = 4
	ec := mustEngine(t, capped)
	big := packet.Packet{Flow: 0, Payload: make([]byte, 3*packet.CellPayload)}
	if err := ec.Offer(0, big); err != nil {
		t.Fatal(err)
	}
	if err := ec.Offer(0, big); !errors.Is(err, router.ErrIngressFull) {
		t.Errorf("err = %v, want ErrIngressFull", err)
	}
	if n, err := ec.OfferBatch(0, []packet.Packet{{Flow: 0}, big}); n != 1 || !errors.Is(err, router.ErrIngressFull) {
		t.Errorf("OfferBatch = %d, %v; want 1, ErrIngressFull", n, err)
	}
	if got := ec.IngressBacklog(0); got != 4 {
		t.Errorf("backlog = %d", got)
	}

	if err := e.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := e.Step(); !errors.Is(err, router.ErrClosed) {
		t.Errorf("Step after Close: err = %v, want ErrClosed", err)
	}
	if err := e.Offer(0, packet.Packet{Flow: 0}); !errors.Is(err, router.ErrClosed) {
		t.Errorf("Offer after Close: err = %v, want ErrClosed", err)
	}
}

// TestSinglePacketAcrossFabric: one packet crosses the sharded fabric
// byte-identical.
func TestSinglePacketAcrossFabric(t *testing.T) {
	e := mustEngine(t, testConfig(2, 1, 0))
	payload := bytes.Repeat([]byte{0x5A}, 2*packet.CellPayload+7)
	if err := e.Offer(0, packet.Packet{Flow: e.VOQ(1, 0), Payload: payload}); err != nil {
		t.Fatal(err)
	}
	var got []router.Egress
	for slot := 0; slot < 5000 && len(got) == 0; slot++ {
		eg, err := e.Step()
		if err != nil {
			t.Fatal(err)
		}
		got = append(got, eg...)
	}
	if len(got) != 1 {
		t.Fatalf("delivered %d packets", len(got))
	}
	g := got[0]
	if g.Output != 1 || g.Input != 0 || g.Packet.Flow != e.VOQ(1, 0) {
		t.Errorf("routing: %+v", g)
	}
	if !bytes.Equal(g.Packet.Payload, payload) {
		t.Error("payload corrupted in flight")
	}
	st := e.Stats()
	if st.OfferedPackets != 1 || st.DeliveredPackets != 1 || st.SwitchedCells != 3 {
		t.Errorf("stats = %+v", st)
	}
	for p := 0; p < 2; p++ {
		if bs := e.BufferStats(p); !bs.Clean() {
			t.Errorf("port %d buffer not clean: %+v", p, bs)
		}
	}
}

// TestShardedMatchesSerial is the public golden-equivalence test: a
// seeded workload produces a bit-identical egress stream and stats
// through the serial path (Workers: 1) and the sharded path
// (Workers: 0), slot for slot.
func TestShardedMatchesSerial(t *testing.T) {
	const ports, classes, slots = 4, 2, 6000
	serial := mustEngine(t, testConfig(ports, classes, 1))
	sharded := mustEngine(t, testConfig(ports, classes, 0))
	if serial.Workers() != 1 || sharded.Workers() != ports {
		t.Fatalf("workers = %d, %d", serial.Workers(), sharded.Workers())
	}

	type rec struct {
		output, input int
		flow          pktbuf.Queue
		payload       []byte
	}
	drive := func(e *router.Engine, rng *rand.Rand) []rec {
		if rng.Intn(3) == 0 {
			in := rng.Intn(ports)
			payload := make([]byte, rng.Intn(4*packet.CellPayload))
			rng.Read(payload)
			p := packet.Packet{Flow: e.VOQ(rng.Intn(ports), rng.Intn(classes)), Payload: payload}
			if err := e.Offer(in, p); err != nil && !errors.Is(err, router.ErrIngressFull) {
				t.Fatal(err)
			}
		}
		eg, err := e.Step()
		if err != nil {
			t.Fatal(err)
		}
		recs := make([]rec, 0, len(eg))
		for _, g := range eg {
			recs = append(recs, rec{g.Output, g.Input, g.Packet.Flow,
				append([]byte(nil), g.Packet.Payload...)})
		}
		return recs
	}

	rngA := rand.New(rand.NewSource(2003))
	rngB := rand.New(rand.NewSource(2003))
	for slot := 0; slot < slots; slot++ {
		a, b := drive(serial, rngA), drive(sharded, rngB)
		if len(a) != len(b) {
			t.Fatalf("slot %d: serial %d egress, sharded %d", slot, len(a), len(b))
		}
		for k := range a {
			if a[k].output != b[k].output || a[k].input != b[k].input ||
				a[k].flow != b[k].flow || !bytes.Equal(a[k].payload, b[k].payload) {
				t.Fatalf("slot %d egress %d diverged: %+v vs %+v", slot, k, a[k], b[k])
			}
		}
	}
	if serial.Stats() != sharded.Stats() {
		t.Errorf("stats diverged: serial %+v, sharded %+v", serial.Stats(), sharded.Stats())
	}
	for p := 0; p < ports; p++ {
		if serial.BufferStats(p) != sharded.BufferStats(p) {
			t.Errorf("port %d buffer stats diverged", p)
		}
	}
}

// TestConservationSharded pushes random packets through a sharded 4×4
// engine with StepBatch and checks every one emerges intact, in order
// per (input, output, class) stream.
func TestConservationSharded(t *testing.T) {
	const ports, classes = 4, 2
	e := mustEngine(t, testConfig(ports, classes, 0))
	rng := rand.New(rand.NewSource(99))

	type stream struct{ payloads [][]byte }
	var sent [ports][ports * classes]stream // [input][flow]
	offered := 0
	out := make([]router.Egress, 0, 64)
	verify := func(eg []router.Egress) {
		for _, g := range eg {
			q := &sent[g.Input][g.Packet.Flow]
			if len(q.payloads) == 0 {
				t.Fatalf("unexpected packet at output %d from input %d", g.Output, g.Input)
			}
			if !bytes.Equal(q.payloads[0], g.Packet.Payload) {
				t.Fatalf("payload mismatch at output %d from input %d flow %d",
					g.Output, g.Input, g.Packet.Flow)
			}
			q.payloads = q.payloads[1:]
			if want := int(g.Packet.Flow) / classes; g.Output != want {
				t.Fatalf("packet for flow %d emerged at output %d", g.Packet.Flow, g.Output)
			}
		}
	}
	for slot := 0; slot < 20000; slot++ {
		if offered < 500 && rng.Intn(8) == 0 {
			in := rng.Intn(ports)
			flow := e.VOQ(rng.Intn(ports), rng.Intn(classes))
			payload := make([]byte, rng.Intn(5*packet.CellPayload))
			rng.Read(payload)
			if err := e.Offer(in, packet.Packet{Flow: flow, Payload: payload}); err == nil {
				sent[in][flow].payloads = append(sent[in][flow].payloads, payload)
				offered++
			}
		}
		var err error
		out, err = e.StepBatch(1, out[:0])
		if err != nil {
			t.Fatalf("slot %d: %v", slot, err)
		}
		verify(out)
	}
	for slot := 0; slot < 200000 && e.Stats().DeliveredPackets < uint64(offered); slot += 64 {
		var err error
		out, err = e.StepBatch(64, out[:0])
		if err != nil {
			t.Fatal(err)
		}
		verify(out)
	}
	if got := e.Stats().DeliveredPackets; got != uint64(offered) {
		t.Fatalf("delivered %d of %d packets", got, offered)
	}
	for p := 0; p < ports; p++ {
		if bs := e.BufferStats(p); !bs.Clean() {
			t.Errorf("port %d buffer not clean: %+v", p, bs)
		}
	}
}

// TestStepBatchAppends: StepBatch extends the caller's slice without
// dropping prior contents.
func TestStepBatchAppends(t *testing.T) {
	e := mustEngine(t, testConfig(2, 1, 1))
	if err := e.Offer(0, packet.Packet{Flow: e.VOQ(1, 0), Payload: []byte{1}}); err != nil {
		t.Fatal(err)
	}
	out := make([]router.Egress, 0, 8)
	out = append(out, router.Egress{Output: -1})
	out, err := e.StepBatch(4000, out)
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != 2 || out[0].Output != -1 {
		t.Fatalf("StepBatch egress = %+v", out)
	}
}
