// Package router is the public concurrent router engine: the paper's
// system context (Figure 1) promoted to the API surface. An Engine is
// an input-queued router in which every input line card carries its
// own VOQ packet buffer (a pktbuf.Buffer shard), fed by the cell
// segmentation layer (repro/pktbuf/packet) and drained by an
// iSLIP-style request-grant-accept fabric scheduler; output ports
// reassemble cells into packets.
//
// The engine is sharded for concurrency: each input port's buffer
// shard is advanced by a dedicated worker goroutine, and the iSLIP
// request-grant-accept exchange is the only per-slot synchronization
// barrier — the "serialize only at the narrow bridge" discipline.
// Port ticks touch only port-local state, the scheduler reads only
// the request vectors the ports published after their previous ticks,
// and egress is collected in input-port order, so the sharded engine
// is deterministic and bit-identical to the serial path (Workers: 1),
// which the test suite pins with a golden-equivalence test.
//
// Config.EpochSlots batches that barrier: the coordinator plans up to
// K slots of matchings in one pass against analytically predicted
// request vectors and the workers execute the whole plan between two
// synchronizations, cutting coordination cost per slot by ~K× while
// remaining bit-identical for every K (see the README's "Epoch
// batching" section for the design and measured trade-offs).
//
// A minimal session:
//
//	eng, err := router.New(router.Config{Ports: 8, Buffer: pktbuf.Config{
//	    LineRate: pktbuf.OC3072, Granularity: 4, Banks: 256}})
//	defer eng.Close()
//	eng.Offer(0, packet.Packet{Flow: eng.VOQ(3, 0), Payload: body})
//	egress, err := eng.StepBatch(1000, nil)   // or Step() slot by slot
//
// The engine is single-driver: Offer, Step, StepBatch and Close must
// be called from one goroutine; the workers parallelize the inside of
// a slot, not the callers. Errors are typed sentinels (ErrIngressFull,
// ErrBadPort, ErrBadFlow, ErrClosed) matched with errors.Is; config
// rejections wrap pktbuf.ErrBadConfig.
package router

import (
	"fmt"

	"repro/internal/cell"
	"repro/internal/facade"
	ipacket "repro/internal/packet"
	irouter "repro/internal/router"
	"repro/pktbuf"
	"repro/pktbuf/packet"
)

// Errors returned by the engine, matched with errors.Is. Config
// rejections from New wrap pktbuf.ErrBadConfig instead.
var (
	// ErrIngressFull reports that an Offer would exceed the port's
	// pre-segmentation cell backlog (Config.IngressCap).
	ErrIngressFull = irouter.ErrIngressFull
	// ErrBadPort reports a port index outside [0, Config.Ports).
	ErrBadPort = irouter.ErrBadPort
	// ErrBadFlow reports a packet flow outside [0, Ports×Classes).
	ErrBadFlow = irouter.ErrBadFlow
	// ErrClosed reports use of an engine after Close.
	ErrClosed = irouter.ErrClosed
	// ErrEpochDiverged reports that epoch-batched execution
	// (Config.EpochSlots > 1) diverged from its plan with shards
	// already past the divergence point, leaving the engine torn; the
	// egress returned alongside it is the valid committed prefix.
	// Reachable only after a buffer invariant violation — in healthy
	// states the epoch planner's predictions are exact.
	ErrEpochDiverged = irouter.ErrEpochDiverged
)

// Config describes the router engine.
type Config struct {
	// Ports is the number of input (= output) ports.
	Ports int
	// Classes is the number of service classes (default 1); each input
	// buffer holds Ports×Classes VOQs (§2: "Each logical queue
	// corresponds to an output line interface and a class of
	// service").
	Classes int
	// Buffer is the per-input packet buffer template. Its Queues field
	// is overwritten with Ports×Classes.
	Buffer pktbuf.Config
	// SchedulerIterations is the number of iSLIP iterations per slot
	// (default 1; more iterations converge closer to a maximal
	// matching).
	SchedulerIterations int
	// IngressCap bounds each input's pre-segmentation cell backlog
	// (0 = a generous default of 4096 cells).
	IngressCap int
	// Workers selects the sharding: 0 runs one worker goroutine per
	// port (the default), 1 runs the serial reference path in place
	// with no goroutines, and 2..Ports-1 stripes the ports across that
	// many workers. Every setting produces bit-identical results.
	Workers int
	// EpochSlots is the speculation window K of the epoch-batched
	// engine: StepBatch runs as a sequence of K-slot epochs, each
	// planned in one serialized iSLIP pass and executed by the workers
	// between a single pair of synchronizations. 0 or 1 selects the
	// lockstep engine (one barrier per slot); larger K amortizes the
	// barrier ~K× (clamped to 4096). Every setting produces
	// bit-identical egress and Stats; only coordination cost changes.
	EpochSlots int
}

// Egress is one packet leaving the router.
type Egress struct {
	// Output is the egress port.
	Output int
	// Input is the port the packet entered on.
	Input int
	// Packet is the reassembled packet (Flow = output×Classes+class,
	// as offered). Its payload lives in the engine's egress arena: all
	// egress from one Step or StepBatch call stays valid until the
	// next such call, so callers that retain packets across steps must
	// copy the payload.
	Packet packet.Packet
}

// Stats aggregates router-level counters.
type Stats struct {
	// OfferedPackets / DeliveredPackets count whole packets.
	OfferedPackets, DeliveredPackets uint64
	// SwitchedCells counts cells moved through the fabric.
	SwitchedCells uint64
	// Matches counts input-output matches made by the scheduler.
	Matches uint64
	// Slots counts slots stepped.
	Slots uint64
}

// Engine is the composed, sharded router.
type Engine struct {
	inner     *irouter.Engine
	cfg       Config
	scratch   []irouter.Egress
	egOut     []Egress
	obScratch []ipacket.Packet
}

// New builds an engine. Rejected configurations (including buffer
// template rejections) return errors matching pktbuf.ErrBadConfig.
func New(cfg Config) (*Engine, error) {
	if cfg.Ports <= 0 {
		return nil, fmt.Errorf("%w: router: Ports must be positive, got %d", pktbuf.ErrBadConfig, cfg.Ports)
	}
	if cfg.Classes < 0 {
		return nil, fmt.Errorf("%w: router: Classes must not be negative, got %d", pktbuf.ErrBadConfig, cfg.Classes)
	}
	if cfg.Classes == 0 {
		cfg.Classes = 1
	}
	buf := cfg.Buffer
	buf.Queues = cfg.Ports * cfg.Classes
	cc, err := facade.CoreConfig(buf)
	if err != nil {
		return nil, err
	}
	inner, err := irouter.NewEngine(irouter.Config{
		Ports:               cfg.Ports,
		Classes:             cfg.Classes,
		Buffer:              cc,
		SchedulerIterations: cfg.SchedulerIterations,
		IngressCap:          cfg.IngressCap,
		EpochSlots:          cfg.EpochSlots,
	}, cfg.Workers)
	if err != nil {
		return nil, err
	}
	norm := inner.Config()
	cfg.SchedulerIterations = norm.SchedulerIterations
	cfg.IngressCap = norm.IngressCap
	cfg.EpochSlots = norm.EpochSlots
	cfg.Workers = inner.Workers()
	return &Engine{inner: inner, cfg: cfg}, nil
}

// Config returns the normalized configuration (defaults resolved; the
// Buffer field is the template as passed, with Queues overwritten).
func (e *Engine) Config() Config {
	cfg := e.cfg
	cfg.Buffer.Queues = cfg.Ports * cfg.Classes
	return cfg
}

// VOQ maps (output, class) to the flow id used when offering packets.
// Out-of-range arguments return pktbuf.None, which Offer rejects with
// ErrBadFlow — an in-range class can never silently alias another
// output's VOQ.
func (e *Engine) VOQ(output, class int) pktbuf.Queue {
	if output < 0 || output >= e.cfg.Ports || class < 0 || class >= e.cfg.Classes {
		return pktbuf.None
	}
	return pktbuf.Queue(output*e.cfg.Classes + class)
}

// Offer enqueues a packet at an input port. The packet's Flow must be
// a valid VOQ id (use VOQ to build it); its payload is aliased by the
// segmented cells until the packet leaves the router. Offer must not
// be called concurrently with Step or StepBatch.
func (e *Engine) Offer(port int, p packet.Packet) error {
	return e.inner.Offer(port, ipacket.Packet{Flow: cell.QueueID(p.Flow), Payload: p.Payload})
}

// OfferBatch enqueues packets at an input port in one validated pass:
// the port and engine state are checked once, the accepted prefix is
// sized against the ingress budget up front, and its cells are
// segmented in a single run. It returns the number of packets
// accepted and the error that stopped the run (ErrIngressFull when
// the backlog fills, ErrBadFlow on an invalid flow id); the remaining
// packets are not offered.
func (e *Engine) OfferBatch(port int, ps []packet.Packet) (int, error) {
	e.obScratch = e.obScratch[:0]
	for k := range ps {
		e.obScratch = append(e.obScratch, ipacket.Packet{Flow: cell.QueueID(ps[k].Flow), Payload: ps[k].Payload})
	}
	n, err := e.inner.OfferBatch(port, e.obScratch)
	for k := range e.obScratch {
		e.obScratch[k] = ipacket.Packet{} // drop payload references
	}
	return n, err
}

// Step advances the engine one slot: one ingress cell per port, one
// iSLIP matching, one concurrent buffer tick per port shard, and
// in-order output reassembly. It returns the packets completed this
// slot; the slice and the packet payloads are valid until the next
// Step or StepBatch call (see Egress).
func (e *Engine) Step() ([]Egress, error) {
	out, err := e.StepBatch(1, e.egOut[:0])
	e.egOut = out
	return out, err
}

// StepBatch advances up to slots slots, appending every completed
// packet to out and returning the extended slice — the batch entry
// point of the sharded fast path: with enough capacity in out it
// allocates nothing. Egress payloads from the whole batch stay valid
// until the next Step or StepBatch call. On a slot error it stops
// after the offending slot (whose egress is already appended) and
// returns the error.
func (e *Engine) StepBatch(slots int, out []Egress) ([]Egress, error) {
	var stepErr error
	e.scratch, stepErr = e.inner.StepBatch(slots, e.scratch[:0])
	for _, g := range e.scratch {
		out = append(out, Egress{
			Output: g.Output,
			Input:  g.Input,
			Packet: packet.Packet{Flow: pktbuf.Queue(g.Packet.Flow), Payload: g.Packet.Payload},
		})
	}
	return out, stepErr
}

// IngressBacklog returns the number of segmented cells waiting to
// enter port's buffer.
func (e *Engine) IngressBacklog(port int) int { return e.inner.IngressBacklog(port) }

// BufferStats exposes an input port's buffer statistics — the same
// snapshot pktbuf.Buffer.Stats reports, including the worst-case
// invariant counters (Clean()).
func (e *Engine) BufferStats(port int) pktbuf.Stats {
	return facade.PublicStats(e.inner.BufferStats(port)).(pktbuf.Stats)
}

// Stats returns the router-level counters.
func (e *Engine) Stats() Stats {
	s := e.inner.Stats()
	return Stats{
		OfferedPackets:   s.OfferedPackets,
		DeliveredPackets: s.DeliveredPackets,
		SwitchedCells:    s.SwitchedCells,
		Matches:          s.Matches,
		Slots:            s.Slots,
	}
}

// EpochStats counts the epoch-batched engine's planning and
// synchronization activity. It is separate from Stats, which stays
// bit-identical across every EpochSlots setting.
type EpochStats struct {
	// Epochs counts executed plans; PlannedSlots the slots they
	// covered and CommittedSlots the slots that committed (equal
	// unless a divergence truncated a plan).
	Epochs, PlannedSlots, CommittedSlots uint64
	// HorizonTruncations counts plans cut short of the full window by
	// the admission horizon; SerialFallbackSlots counts slots stepped
	// in exact lockstep because no slot could be planned.
	HorizonTruncations, SerialFallbackSlots uint64
	// Divergences counts execution-time prediction failures (zero in
	// every healthy state).
	Divergences uint64
	// SyncOps counts coordinator↔worker channel operations: the
	// lockstep engine pays 2×Workers per slot, the epoch engine
	// 2×Workers per epoch.
	SyncOps uint64
}

// EpochStats returns the epoch engine's planning and synchronization
// counters (all zero while EpochSlots ≤ 1, except SyncOps, which the
// lockstep barrier also maintains).
func (e *Engine) EpochStats() EpochStats {
	s := e.inner.EpochStats()
	return EpochStats{
		Epochs:              s.Epochs,
		PlannedSlots:        s.PlannedSlots,
		CommittedSlots:      s.CommittedSlots,
		HorizonTruncations:  s.HorizonTruncations,
		SerialFallbackSlots: s.SerialFallbackSlots,
		Divergences:         s.Divergences,
		SyncOps:             s.SyncOps,
	}
}

// Quiescent reports whether every port is idle end to end: no ingress
// cell waiting, no requestable VOQ anywhere, and every buffer shard
// with no internal work in flight. A quiescent engine's StepBatch
// fast-forwards all shards in lockstep instead of stepping them slot
// by slot (bit-identical, but O(1) per batch), so batches that
// outlive their traffic cost nothing per slot.
func (e *Engine) Quiescent() bool { return e.inner.Quiescent() }

// Workers returns the number of worker goroutines (1 = serial).
func (e *Engine) Workers() int { return e.inner.Workers() }

// Close stops the worker goroutines. A closed engine rejects further
// Offer and Step calls with ErrClosed. Close is idempotent.
func (e *Engine) Close() error { return e.inner.Close() }
