package router_test

import (
	"fmt"
	"math/rand"
	"runtime"
	"testing"

	"repro/pktbuf"
	"repro/pktbuf/packet"
	"repro/pktbuf/router"
)

func benchEngine(b *testing.B, ports, classes, workers, epoch int) *router.Engine {
	b.Helper()
	e, err := router.New(router.Config{
		Ports:      ports,
		Classes:    classes,
		Workers:    workers,
		EpochSlots: epoch,
		Buffer: pktbuf.Config{
			LineRate:    pktbuf.OC3072,
			Granularity: 4,
			Banks:       256,
		},
	})
	if err != nil {
		b.Fatal(err)
	}
	b.Cleanup(func() { e.Close() })
	return e
}

// driveEngine measures the per-slot cost of the whole engine
// (segmentation + per-port buffers + iSLIP + reassembly) under ~75%
// offered load (one 6-cell packet per port per 8 slots, uniform
// destinations) — sub-saturation, so occupancies plateau and the
// steady state stays allocation-free.
func driveEngine(b *testing.B, e *router.Engine, ports, classes int) {
	b.Helper()
	rng := rand.New(rand.NewSource(1))
	payload := make([]byte, 300)
	out := make([]router.Egress, 0, 4*ports)
	offer := func(slot int) {
		if slot%8 == 0 {
			for port := 0; port < ports; port++ {
				p := packet.Packet{
					Flow:    e.VOQ(rng.Intn(ports), rng.Intn(classes)),
					Payload: payload,
				}
				_ = e.Offer(port, p) // ingress-full is fine under load
			}
		}
	}
	// Warm rings, arenas and reassembly buffers before measuring.
	for s := 0; s < 6000; s++ {
		offer(s)
		var err error
		out, err = e.StepBatch(1, out[:0])
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		offer(i)
		var err error
		out, err = e.StepBatch(1, out[:0])
		if err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	st := e.Stats()
	if st.Slots == 0 {
		b.Fatal("no slots")
	}
	b.ReportMetric(float64(st.SwitchedCells)/float64(st.Slots), "cells/slot")
	// The parallel rows only demonstrate multi-core speedup when the
	// host actually has the cores; emit the count so recorded baselines
	// carry a machine-checkable single-CPU caveat instead of a prose
	// one (a `cpus` field in BENCH_baseline.json rows).
	b.ReportMetric(float64(runtime.NumCPU()), "cpus")
}

// BenchmarkRouterStep is the serial reference: the whole engine on
// one goroutine, across the port counts of the scaling table.
func BenchmarkRouterStep(b *testing.B) {
	for _, ports := range []int{1, 4, 8, 16} {
		b.Run(fmt.Sprintf("ports=%d", ports), func(b *testing.B) {
			e := benchEngine(b, ports, 2, 1, 1)
			driveEngine(b, e, ports, 2)
		})
	}
}

// BenchmarkRouterParallel is the sharded engine: one worker goroutine
// per port, the iSLIP exchange as the only per-slot barrier. The
// ≥2×-over-serial gate applies at ports=8 on a multi-core host
// (GOMAXPROCS ≥ 8); on a single-CPU host the workers serialize and
// the barrier overhead is what this benchmark reports.
func BenchmarkRouterParallel(b *testing.B) {
	for _, ports := range []int{4, 8, 16} {
		b.Run(fmt.Sprintf("ports=%d", ports), func(b *testing.B) {
			e := benchEngine(b, ports, 2, 0, 1)
			driveEngine(b, e, ports, 2)
		})
	}
}

// BenchmarkRouterEpoch is the epoch-batched sharded engine at the
// gated configuration (ports=8, one worker per port): each op steps
// one K-slot window through StepBatch, so ns/op scales with K and the
// per-slot figures are reported as explicit metrics — ns_slot (the
// comparable cost) and sync_ops_slot (the coordinator↔worker channel
// operations the epoch amortizes: 2×workers at K=1, 2×workers/K for
// larger windows). K=1 is the lockstep barrier for reference.
func BenchmarkRouterEpoch(b *testing.B) {
	const ports, classes = 8, 2
	for _, K := range []int{1, 4, 16} {
		b.Run(fmt.Sprintf("ports=%d/K=%d", ports, K), func(b *testing.B) {
			e := benchEngine(b, ports, classes, 0, K)
			driveEngineEpoch(b, e, ports, classes, K)
		})
	}
}

// driveEngineEpoch is driveEngine's K-slot-window variant: identical
// offered load (one 6-cell packet per port per 8 slots), stepped
// through StepBatch(K) calls.
func driveEngineEpoch(b *testing.B, e *router.Engine, ports, classes, K int) {
	b.Helper()
	rng := rand.New(rand.NewSource(1))
	payload := make([]byte, 300)
	out := make([]router.Egress, 0, 4*ports)
	slot := 0
	step := func() {
		for s := slot; s < slot+K; s++ {
			if s%8 == 0 {
				for port := 0; port < ports; port++ {
					p := packet.Packet{
						Flow:    e.VOQ(rng.Intn(ports), rng.Intn(classes)),
						Payload: payload,
					}
					_ = e.Offer(port, p) // ingress-full is fine under load
				}
			}
		}
		var err error
		out, err = e.StepBatch(K, out[:0])
		if err != nil {
			b.Fatal(err)
		}
		slot += K
	}
	for slot < 6000 {
		step()
	}
	startSlots := e.Stats().Slots
	startSync := e.EpochStats().SyncOps
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		step()
	}
	b.StopTimer()
	st := e.Stats()
	slots := st.Slots - startSlots
	if slots == 0 {
		b.Fatal("no slots")
	}
	if es := e.EpochStats(); es.Divergences != 0 {
		b.Fatalf("epoch execution diverged %d times", es.Divergences)
	}
	b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(slots), "ns_slot")
	b.ReportMetric(float64(e.EpochStats().SyncOps-startSync)/float64(slots), "sync_ops_slot")
	b.ReportMetric(float64(st.SwitchedCells)/float64(st.Slots), "cells/slot")
	b.ReportMetric(float64(runtime.NumCPU()), "cpus")
}
