// Package pktbuf is the public API of the packet-buffer library: a
// hybrid SRAM/DRAM virtual-output-queue buffer with worst-case
// bandwidth guarantees, implementing the Conflict-Free DRAM System
// (CFDS) of García, Corbal, Cerdà and Valero, "Design and
// Implementation of High-Performance Memory Systems for Future Packet
// Buffers" (MICRO-36, 2003), together with the RADS baseline of Iyer,
// Kompella and McKeown that the paper builds on.
//
// The buffer is a slot-accurate model: one Tick per cell time. Each
// slot accepts at most one arriving cell and one scheduler request and
// emits at most one delivered cell, exactly like the line card the
// paper describes. All of the paper's worst-case properties — zero
// head-SRAM misses, conflict-free DRAM banking, bounded reordering —
// are enforced as runtime invariants: if a configuration violates
// them, Tick returns an error instead of silently corrupting traffic.
//
// A minimal session:
//
//	buf, err := pktbuf.New(pktbuf.Config{Queues: 64, LineRate: pktbuf.OC3072, Granularity: 4, Banks: 256})
//	...
//	buf.Tick(pktbuf.Input{Arrival: 3, Request: pktbuf.None}) // cell arrives for VOQ 3
//	out, err := buf.Tick(pktbuf.Input{Arrival: pktbuf.None, Request: 3})
//	if out.Ok { /* forward out.Delivered */ }
//
// The façade is also the fast path: Tick has value semantics (no
// per-delivery allocation), TickBatch amortizes the call overhead for
// long runs, and errors are typed sentinels (ErrBufferFull,
// ErrUnknownQueue, ErrBadRequest, ErrBadConfig) matched with
// errors.Is. Long simulations are driven by the repro/pktbuf/sim
// runner and workload generators; repro/pktbuf/trace records and
// replays slot-level stimulus.
//
// For long-lived use outside a single process, repro/pktbuf/serve
// wraps one buffer instance in a network daemon (cmd/pktbufd):
// clients handshake for a set of flows, submit cells and receive
// deliveries over a length-prefixed wire protocol, with typed
// admission backpressure mapped onto the same error taxonomy and the
// engine still ticked by exactly one goroutine.
//
// The complete engine state is serializable: Buffer.Snapshot writes
// every queue arena, SRAM list, DRAM bank, MMA lookahead structure,
// rename register and counter as versioned frames, and Restore
// rebuilds a buffer whose subsequent run is bit-identical to one that
// was never interrupted — stats included. Snapshots back warm-start
// forking for sizing sweeps and the crash-safe checkpoint/resume path
// of the serving tier; a version or integrity mismatch fails with
// ErrSnapshotVersion or ErrSnapshot rather than yielding a
// half-restored buffer.
package pktbuf

import (
	"fmt"

	"repro/internal/cell"
	"repro/internal/core"
	"repro/internal/dimension"
	"repro/internal/facade"
)

func init() {
	// Install the bridges that let the sibling public packages
	// (repro/pktbuf/sim, repro/pktbuf/router) reach the core layer
	// without widening the public API surface.
	facade.CoreOf = func(b any) *core.Buffer { return b.(*Buffer).inner }
	facade.CoreConfig = func(cfg any) (core.Config, error) { return coreConfig(cfg.(Config)) }
	facade.PublicStats = func(s core.Stats) any { return statsFromCore(s) }
}

// CellSize is the fixed cell size in bytes (§2 of the paper: packets
// are segmented into 64-byte cells).
const CellSize = cell.Size

// Queue identifies a Virtual Output Queue (0-based).
type Queue int32

// None means "no arrival" / "no request" in an Input.
const None Queue = -1

// LineRate selects the SONET line rate the buffer is dimensioned for.
type LineRate int

// Line rates from the paper's evaluation.
const (
	// OC192 is 10 Gb/s (51.2 ns per 64-byte cell).
	OC192 LineRate = iota
	// OC768 is 40 Gb/s (12.8 ns per cell).
	OC768
	// OC3072 is 160 Gb/s (3.2 ns per cell) — the paper's target.
	OC3072
)

// String implements fmt.Stringer.
func (r LineRate) String() string {
	c, err := r.internal()
	if err != nil {
		return fmt.Sprintf("LineRate(%d)", int(r))
	}
	return c.String()
}

// SlotTimeNS returns the duration of one time slot in nanoseconds —
// the transmission time of one 64-byte cell at the line rate (3.2 ns
// at OC-3072). Zero for an unknown rate.
func (r LineRate) SlotTimeNS() float64 {
	c, err := r.internal()
	if err != nil {
		return 0
	}
	return c.SlotTimeNS()
}

func (r LineRate) internal() (cell.LineRate, error) {
	switch r {
	case OC192:
		return cell.OC192, nil
	case OC768:
		return cell.OC768, nil
	case OC3072:
		return cell.OC3072, nil
	}
	return 0, fmt.Errorf("%w: unknown LineRate(%d)", ErrBadConfig, int(r))
}

// Organization selects the shared SRAM organization (§7.1 of the
// paper).
type Organization int

// Organizations.
const (
	// GlobalCAM is the content-addressable organization: fastest
	// access, largest area.
	GlobalCAM Organization = iota
	// UnifiedLinkedList is the time-multiplexed linked-list
	// organization: smallest area, ~3× slower per operation.
	UnifiedLinkedList
)

// MMA selects the head Memory Management Algorithm.
type MMA int

// Head MMAs.
const (
	// ECQF is Earliest Critical Queue First — the paper's h-MMA (§3),
	// driven by the request lookahead.
	ECQF MMA = iota
	// MDQF is the lookahead-free Most Deficit Queue First baseline of
	// the RADS work.
	MDQF
)

// Config describes a buffer. Queues, LineRate and Banks are required;
// everything else defaults to the paper's dimensioning formulas.
type Config struct {
	// Queues is the number of VOQs (Q).
	Queues int
	// LineRate fixes the slot time and the RADS granularity B
	// (assuming the paper's 48 ns DRAM random access time).
	LineRate LineRate
	// Granularity is the CFDS transfer granularity b in cells. Zero
	// selects B (the RADS baseline). Smaller b shrinks the SRAMs at
	// the cost of a DRAM reordering pipeline (the paper's key
	// trade-off; b=2..4 is typically optimal).
	Granularity int
	// Banks is the number of DRAM banks M (default 256, the paper's
	// evaluation value).
	Banks int
	// BankCapacityBlocks bounds per-bank storage (0 = unbounded).
	BankCapacityBlocks int
	// Renaming enables the paper's §6 queue renaming, letting any
	// single VOQ occupy the whole DRAM instead of 1/G of it.
	Renaming bool
	// Organization selects the shared SRAM structure.
	Organization Organization
	// MMA selects the head Memory Management Algorithm.
	MMA MMA
	// Lookahead overrides the MMA lookahead (slots); zero uses the
	// ECQF full lookahead Q(b−1)+1.
	Lookahead int
	// LatencySlots overrides the equation (3) latency register
	// (slots); zero uses the budget-aware analytic default. Together
	// with a small Lookahead this shortens the request→delivery
	// pipeline — low-latency and sparse deployments need that for
	// idle gaps to outlast the pipeline and fast-forward — at the
	// cost of the analytic worst-case reordering slack (a too-small
	// register surfaces as a head-SRAM miss error, never as silent
	// corruption).
	LatencySlots int
}

// Cell is one delivered 64-byte unit.
type Cell struct {
	// Queue is the VOQ the cell belongs to.
	Queue Queue
	// Seq is the cell's arrival ordinal within its VOQ; deliveries are
	// guaranteed strictly sequential per VOQ.
	Seq uint64
}

// Input is one slot's stimulus.
type Input struct {
	// Arrival is the VOQ of the cell arriving this slot (None = idle).
	Arrival Queue
	// Request is the VOQ the fabric scheduler requests this slot
	// (None = idle). The queue must have Requestable() > 0.
	Request Queue
}

// Output is one slot's outcome. It has value semantics: nothing in it
// aliases buffer-owned storage, so outputs may be retained freely and
// the delivery path performs no allocation.
type Output struct {
	// Delivered is the cell granted to the scheduler this slot. It is
	// meaningful only when Ok is true (otherwise it is the zero Cell).
	Delivered Cell
	// Ok reports whether a cell was delivered this slot.
	Ok bool
	// Bypassed reports a delivery straight from the ingress SRAM
	// (cut-through for queues with no DRAM-resident cells).
	Bypassed bool
}

// Stats is the public statistics snapshot. See core.Stats for field
// semantics; all invariant counters must remain zero on a correctly
// dimensioned buffer.
type Stats struct {
	Arrivals, Requests, Deliveries, Bypasses uint64
	Misses, Drops, BadRequests               uint64
	TailSRAMHighWater, HeadSRAMHighWater     int
	MaxRequestRegisterOccupancy              int
	MaxRequestSkips                          int
	// FastForwardedSlots counts slots skipped in O(1) by FastForward
	// (directly, via the TickBatch idle path, or by the sim Runner's
	// sparse fast-forward) instead of being ticked. It is the only
	// counter dense slot-by-slot ticking leaves zero; equivalence
	// comparisons exclude it by definition.
	FastForwardedSlots uint64
}

// Clean reports whether every worst-case guarantee held so far.
func (s Stats) Clean() bool {
	return s.Misses == 0 && s.Drops == 0 && s.BadRequests == 0
}

// Sub returns the activity between two snapshots: every monotonic
// counter becomes s−prev, while the high-water and worst-case fields
// (TailSRAMHighWater, HeadSRAMHighWater, MaxRequestRegisterOccupancy,
// MaxRequestSkips) keep their current values — a peak is a property
// of the whole run, not of an interval, so subtracting two peaks is
// meaningless. Periodic reporters take a snapshot per interval and
// print cur.Sub(prev) instead of hand-diffing fields.
func (s Stats) Sub(prev Stats) Stats {
	d := s
	d.Arrivals -= prev.Arrivals
	d.Requests -= prev.Requests
	d.Deliveries -= prev.Deliveries
	d.Bypasses -= prev.Bypasses
	d.Misses -= prev.Misses
	d.Drops -= prev.Drops
	d.BadRequests -= prev.BadRequests
	d.FastForwardedSlots -= prev.FastForwardedSlots
	return d
}

// Buffer is a VOQ packet buffer instance.
type Buffer struct {
	inner *core.Buffer
	cfg   Config
	// inScratch / outScratch are the conversion buffers TickBatch
	// reuses, so repeated batch calls allocate nothing.
	inScratch  []core.TickInput
	outScratch []core.TickOutput
}

// coreConfig applies the façade's defaulting and validation to cfg
// and returns the core configuration it dimensions. It backs both New
// and the facade.CoreConfig bridge used by pktbuf/router.
func coreConfig(cfg Config) (core.Config, error) {
	if cfg.Queues <= 0 {
		return core.Config{}, fmt.Errorf("%w: Queues must be positive, got %d", ErrBadConfig, cfg.Queues)
	}
	rate, err := cfg.LineRate.internal()
	if err != nil {
		return core.Config{}, err
	}
	switch cfg.Organization {
	case GlobalCAM, UnifiedLinkedList:
	default:
		return core.Config{}, fmt.Errorf("%w: unknown Organization(%d)", ErrBadConfig, int(cfg.Organization))
	}
	switch cfg.MMA {
	case ECQF, MDQF:
	default:
		return core.Config{}, fmt.Errorf("%w: unknown MMA(%d)", ErrBadConfig, int(cfg.MMA))
	}
	banks := cfg.Banks
	if banks == 0 {
		banks = 256
	}
	b := cfg.Granularity
	bigB := rate.Granularity(cell.DefaultDRAMAccessNS)
	if b == 0 {
		b = bigB
	}
	return core.Config{
		Q:                  cfg.Queues,
		B:                  bigB,
		Bsmall:             b,
		Banks:              banks,
		BankCapacityBlocks: cfg.BankCapacityBlocks,
		Renaming:           cfg.Renaming,
		Lookahead:          cfg.Lookahead,
		LatencySlots:       cfg.LatencySlots,
		Org:                core.SRAMOrg(cfg.Organization),
		MMA:                core.MMAKind(cfg.MMA),
	}, nil
}

// New builds a buffer, applying the paper's dimensioning formulas to
// every parameter the caller leaves zero. Rejected configurations
// return errors matching ErrBadConfig.
func New(cfg Config) (*Buffer, error) {
	cc, err := coreConfig(cfg)
	if err != nil {
		return nil, err
	}
	inner, err := core.New(cc)
	if err != nil {
		return nil, err
	}
	return &Buffer{inner: inner, cfg: cfg}, nil
}

// Config returns the configuration the buffer was built from (as
// passed to New; see Sizing for the derived, as-built parameters).
func (b *Buffer) Config() Config { return b.cfg }

// Tick advances one slot. The slot completes even when a
// caller-visible error (ErrBufferFull, ErrUnknownQueue, ErrBadRequest)
// is returned: deliveries and internal transfers still occur.
func (b *Buffer) Tick(in Input) (Output, error) {
	out, err := b.inner.Tick(core.TickInput{
		Arrival: cell.QueueID(in.Arrival),
		Request: cell.QueueID(in.Request),
	})
	var pub Output
	if out.Delivered != nil {
		pub.Delivered = Cell{Queue: Queue(out.Delivered.Queue), Seq: out.Delivered.Seq}
		pub.Ok = true
		pub.Bypassed = out.Bypassed
	}
	return pub, err
}

// TickBatch advances one slot per element of in, writing slot i's
// outcome to out[i]. It requires len(out) ≥ len(in) and returns the
// number of slots ticked. On error it stops after the offending slot
// (which, per Tick semantics, still completed and has its outcome in
// out[n-1]). TickBatch is the batch entry point for precomputed
// stimulus: semantically identical to calling Tick per element — the
// skipped-slot accounting in Stats.FastForwardedSlots aside — it
// allocates nothing (after warm-up of its reusable scratch) and lets
// a caller drive thousands of slots per call. It delegates to the
// core's fused batch path, which hoists the per-slot prologue out of
// the loop and converts runs of fully idle inputs into an O(1)
// fast-forward as soon as the buffer is quiescent, so sparse stimulus
// costs per event, not per slot. Outputs have value semantics as
// always: every out[i] remains valid indefinitely.
func (b *Buffer) TickBatch(in []Input, out []Output) (int, error) {
	if len(out) < len(in) {
		return 0, fmt.Errorf("pktbuf: TickBatch output slice too short: %d outputs for %d inputs: %w",
			len(out), len(in), ErrBadConfig)
	}
	if cap(b.inScratch) < len(in) {
		b.inScratch = make([]core.TickInput, len(in))
		b.outScratch = make([]core.TickOutput, len(in))
	}
	cin := b.inScratch[:len(in)]
	cout := b.outScratch[:len(in)]
	for i, v := range in {
		cin[i] = core.TickInput{Arrival: cell.QueueID(v.Arrival), Request: cell.QueueID(v.Request)}
	}
	n, err := b.inner.TickBatch(cin, cout)
	for i := 0; i < n; i++ {
		if d := cout[i].Delivered; d != nil {
			out[i] = Output{
				Delivered: Cell{Queue: Queue(d.Queue), Seq: d.Seq},
				Ok:        true,
				Bypassed:  cout[i].Bypassed,
			}
		} else {
			out[i] = Output{}
		}
	}
	return n, err
}

// Quiescent reports whether the buffer has no internal work in flight:
// the request pipeline is empty, no DRAM transfer is pending or
// scheduled, and neither memory-management algorithm would order one.
// From a quiescent state an idle Tick is a pure time advance, and
// FastForward may skip any number of slots at once. Quiescent says
// nothing about stored cells — a buffer holding cells with no
// outstanding requests is quiescent until the next arrival or request.
func (b *Buffer) Quiescent() bool { return b.inner.Quiescent() }

// FastForward advances the buffer by n idle slots in O(1). It is
// bit-identical to n Tick calls with an idle Input from a quiescent
// state — identical statistics (FastForwardedSlots aside) and
// identical subsequent behavior. If the buffer is not quiescent
// nothing happens; the number of slots actually skipped (n or 0) is
// returned.
func (b *Buffer) FastForward(n uint64) uint64 { return b.inner.FastForward(n) }

// Len returns the number of cells of q currently buffered.
func (b *Buffer) Len(q Queue) int { return b.inner.Len(cell.QueueID(q)) }

// Requestable returns how many cells of q the scheduler may still
// request (buffered cells minus requests already in flight).
func (b *Buffer) Requestable(q Queue) int { return b.inner.Requestable(cell.QueueID(q)) }

// PendingRequests returns the number of admitted requests still in
// flight through the request pipeline (requested but not yet
// delivered). A drain loop may stop as soon as this reaches zero with
// no further requests issued.
func (b *Buffer) PendingRequests() int { return b.inner.PendingRequests() }

// ArrivedSeq returns the number of cells that have ever arrived for
// queue q — equivalently, the Seq the next arrival to q will carry.
// Samplers that attach to a live buffer (for example the sim
// package's latency tracker) use it to align with the per-queue
// numbering.
func (b *Buffer) ArrivedSeq(q Queue) uint64 { return b.inner.ArrivedSeq(cell.QueueID(q)) }

// DeliveredSeq returns the number of cells ever delivered for queue q
// — equivalently, the implicit Seq the next delivery of q will carry.
// Together with ArrivedSeq it lets a restored serving tier reconcile a
// resuming client: cells in [DeliveredSeq, ArrivedSeq) are still
// buffered and will be redelivered, cells at or above ArrivedSeq were
// never seen and must be resubmitted.
func (b *Buffer) DeliveredSeq(q Queue) uint64 { return b.inner.DeliveredSeq(cell.QueueID(q)) }

// Now returns the current slot number.
func (b *Buffer) Now() uint64 { return uint64(b.inner.Now()) }

// Stats returns a statistics snapshot.
func (b *Buffer) Stats() Stats { return statsFromCore(b.inner.Stats()) }

// statsFromCore maps the core statistics onto the public snapshot. It
// also backs the facade.PublicStats bridge used by pktbuf/router.
func statsFromCore(s core.Stats) Stats {
	return Stats{
		Arrivals: s.Arrivals, Requests: s.Requests, Deliveries: s.Deliveries,
		Bypasses: s.Bypasses, Misses: s.Misses, Drops: s.Drops,
		BadRequests:                 s.BadRequests,
		TailSRAMHighWater:           s.TailHighWater,
		HeadSRAMHighWater:           s.HeadHighWater,
		MaxRequestRegisterOccupancy: s.DSS.MaxOccupancy,
		MaxRequestSkips:             s.DSS.MaxSkips,
		FastForwardedSlots:          s.FastForwardedSlots,
	}
}

// Sizing reports a buffer's dimensioned structure sizes — the paper's
// equations (1)-(4). DimensionFor computes the analytic values for a
// configuration without building it; Buffer.Sizing reports the
// as-built values, which include the engineering slack the
// implementation adds on top of the analytic bounds.
type Sizing struct {
	// GranularityB is the RADS granularity B for the line rate.
	GranularityB int
	// Granularity is the resolved CFDS granularity b (B when the
	// configuration left it zero, the RADS baseline).
	Granularity int
	// Lookahead is the MMA lookahead in slots (the ECQF full lookahead
	// Q(b−1)+1 unless overridden).
	Lookahead int
	// HeadSRAMCells / TailSRAMCells are the SRAM sizes in 64 B cells.
	HeadSRAMCells, TailSRAMCells int
	// RequestRegister is equation (1)'s RR size.
	RequestRegister int
	// MaxSkips is equation (2)'s reordering bound.
	MaxSkips int
	// LatencySlots is equation (3)'s latency register size.
	LatencySlots int
	// DelaySlots is the total request-to-delivery pipeline length.
	DelaySlots int
}

// Sizing returns the as-built structure sizes of this buffer,
// including the engineering slack core adds over the analytic bounds.
func (b *Buffer) Sizing() Sizing {
	cfg := b.inner.Config()
	d := cfg.Dimension()
	return Sizing{
		GranularityB:    cfg.B,
		Granularity:     cfg.Bsmall,
		Lookahead:       cfg.Lookahead,
		HeadSRAMCells:   cfg.HeadSRAMCells,
		TailSRAMCells:   cfg.TailSRAMCells,
		RequestRegister: cfg.RRCapacity,
		MaxSkips:        d.MaxSkips(),
		LatencySlots:    cfg.LatencySlots,
		DelaySlots:      cfg.Lookahead + cfg.LatencySlots,
	}
}

// DimensionFor computes the paper's analytic sizing for a
// configuration. Invalid configurations (unknown LineRate,
// non-positive Queues/Banks, a Granularity that is negative or does
// not divide B) return errors matching ErrBadConfig.
func DimensionFor(cfg Config) (Sizing, error) {
	rate, err := cfg.LineRate.internal()
	if err != nil {
		return Sizing{}, err
	}
	bigB := rate.Granularity(cell.DefaultDRAMAccessNS)
	b := cfg.Granularity
	if b == 0 {
		b = bigB
	}
	banks := cfg.Banks
	if banks == 0 {
		banks = 256
	}
	look := cfg.Lookahead
	if look == 0 {
		look = dimension.FullLookahead(cfg.Queues, b)
	}
	d := dimension.Config{Q: cfg.Queues, B: bigB, Bsmall: b, M: banks, Lookahead: look}
	if err := d.Validate(); err != nil {
		return Sizing{}, fmt.Errorf("%w: %v", ErrBadConfig, err)
	}
	return Sizing{
		GranularityB:    bigB,
		Granularity:     b,
		Lookahead:       look,
		HeadSRAMCells:   d.HeadSRAMSize(),
		TailSRAMCells:   d.TailSRAMSize(),
		RequestRegister: d.RRSize(),
		MaxSkips:        d.MaxSkips(),
		LatencySlots:    d.LatencySlots(),
		DelaySlots:      d.DelaySlots(),
	}, nil
}
