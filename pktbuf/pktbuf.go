// Package pktbuf is the public API of the packet-buffer library: a
// hybrid SRAM/DRAM virtual-output-queue buffer with worst-case
// bandwidth guarantees, implementing the Conflict-Free DRAM System
// (CFDS) of García, Corbal, Cerdà and Valero, "Design and
// Implementation of High-Performance Memory Systems for Future Packet
// Buffers" (MICRO-36, 2003), together with the RADS baseline of Iyer,
// Kompella and McKeown that the paper builds on.
//
// The buffer is a slot-accurate model: one Tick per cell time. Each
// slot accepts at most one arriving cell and one scheduler request and
// emits at most one delivered cell, exactly like the line card the
// paper describes. All of the paper's worst-case properties — zero
// head-SRAM misses, conflict-free DRAM banking, bounded reordering —
// are enforced as runtime invariants: if a configuration violates
// them, Tick returns an error instead of silently corrupting traffic.
//
// A minimal session:
//
//	buf, err := pktbuf.New(pktbuf.Config{Queues: 64, LineRate: pktbuf.OC3072, Granularity: 4, Banks: 256})
//	...
//	buf.Tick(pktbuf.Input{Arrival: 3, Request: pktbuf.None}) // cell arrives for VOQ 3
//	out, err := buf.Tick(pktbuf.Input{Arrival: pktbuf.None, Request: 3})
//	if out.Delivered != nil { /* forward the cell */ }
package pktbuf

import (
	"fmt"

	"repro/internal/cell"
	"repro/internal/core"
	"repro/internal/dimension"
)

// Queue identifies a Virtual Output Queue (0-based).
type Queue int32

// None means "no arrival" / "no request" in an Input.
const None Queue = -1

// LineRate selects the SONET line rate the buffer is dimensioned for.
type LineRate int

// Line rates from the paper's evaluation.
const (
	// OC192 is 10 Gb/s (51.2 ns per 64-byte cell).
	OC192 LineRate = iota
	// OC768 is 40 Gb/s (12.8 ns per cell).
	OC768
	// OC3072 is 160 Gb/s (3.2 ns per cell) — the paper's target.
	OC3072
)

func (r LineRate) internal() cell.LineRate {
	switch r {
	case OC192:
		return cell.OC192
	case OC768:
		return cell.OC768
	default:
		return cell.OC3072
	}
}

// Organization selects the shared SRAM organization (§7.1 of the
// paper).
type Organization int

// Organizations.
const (
	// GlobalCAM is the content-addressable organization: fastest
	// access, largest area.
	GlobalCAM Organization = iota
	// UnifiedLinkedList is the time-multiplexed linked-list
	// organization: smallest area, ~3× slower per operation.
	UnifiedLinkedList
)

// Config describes a buffer. Queues, LineRate and Banks are required;
// everything else defaults to the paper's dimensioning formulas.
type Config struct {
	// Queues is the number of VOQs (Q).
	Queues int
	// LineRate fixes the slot time and the RADS granularity B
	// (assuming the paper's 48 ns DRAM random access time).
	LineRate LineRate
	// Granularity is the CFDS transfer granularity b in cells. Zero
	// selects B (the RADS baseline). Smaller b shrinks the SRAMs at
	// the cost of a DRAM reordering pipeline (the paper's key
	// trade-off; b=2..4 is typically optimal).
	Granularity int
	// Banks is the number of DRAM banks M (default 256, the paper's
	// evaluation value).
	Banks int
	// BankCapacityBlocks bounds per-bank storage (0 = unbounded).
	BankCapacityBlocks int
	// Renaming enables the paper's §6 queue renaming, letting any
	// single VOQ occupy the whole DRAM instead of 1/G of it.
	Renaming bool
	// Organization selects the shared SRAM structure.
	Organization Organization
	// Lookahead overrides the MMA lookahead (slots); zero uses the
	// ECQF full lookahead Q(b−1)+1.
	Lookahead int
}

// Cell is one delivered 64-byte unit.
type Cell struct {
	// Queue is the VOQ the cell belongs to.
	Queue Queue
	// Seq is the cell's arrival ordinal within its VOQ; deliveries are
	// guaranteed strictly sequential per VOQ.
	Seq uint64
}

// Input is one slot's stimulus.
type Input struct {
	// Arrival is the VOQ of the cell arriving this slot (None = idle).
	Arrival Queue
	// Request is the VOQ the fabric scheduler requests this slot
	// (None = idle). The queue must have Requestable() > 0.
	Request Queue
}

// Output is one slot's outcome.
type Output struct {
	// Delivered is the cell granted to the scheduler, if any.
	Delivered *Cell
	// Bypassed reports a delivery straight from the ingress SRAM
	// (cut-through for queues with no DRAM-resident cells).
	Bypassed bool
}

// Stats is the public statistics snapshot. See core.Stats for field
// semantics; all invariant counters must remain zero on a correctly
// dimensioned buffer.
type Stats struct {
	Arrivals, Requests, Deliveries, Bypasses uint64
	Misses, Drops, BadRequests               uint64
	TailSRAMHighWater, HeadSRAMHighWater     int
	MaxRequestRegisterOccupancy              int
	MaxRequestSkips                          int
}

// Clean reports whether every worst-case guarantee held so far.
func (s Stats) Clean() bool {
	return s.Misses == 0 && s.Drops == 0 && s.BadRequests == 0
}

// Buffer is a VOQ packet buffer instance.
type Buffer struct {
	inner *core.Buffer
	cfg   Config
}

// New builds a buffer, applying the paper's dimensioning formulas to
// every parameter the caller leaves zero.
func New(cfg Config) (*Buffer, error) {
	if cfg.Queues <= 0 {
		return nil, fmt.Errorf("pktbuf: Queues must be positive, got %d", cfg.Queues)
	}
	rate := cfg.LineRate.internal()
	banks := cfg.Banks
	if banks == 0 {
		banks = 256
	}
	b := cfg.Granularity
	bigB := rate.Granularity(cell.DefaultDRAMAccessNS)
	if b == 0 {
		b = bigB
	}
	inner, err := core.New(core.Config{
		Q:                  cfg.Queues,
		B:                  bigB,
		Bsmall:             b,
		Banks:              banks,
		BankCapacityBlocks: cfg.BankCapacityBlocks,
		Renaming:           cfg.Renaming,
		Lookahead:          cfg.Lookahead,
		Org:                core.SRAMOrg(cfg.Organization),
	})
	if err != nil {
		return nil, err
	}
	return &Buffer{inner: inner, cfg: cfg}, nil
}

// Tick advances one slot.
func (b *Buffer) Tick(in Input) (Output, error) {
	out, err := b.inner.Tick(core.TickInput{
		Arrival: cell.QueueID(in.Arrival),
		Request: cell.QueueID(in.Request),
	})
	var pub Output
	if out.Delivered != nil {
		pub.Delivered = &Cell{Queue: Queue(out.Delivered.Queue), Seq: out.Delivered.Seq}
		pub.Bypassed = out.Bypassed
	}
	return pub, err
}

// Len returns the number of cells of q currently buffered.
func (b *Buffer) Len(q Queue) int { return b.inner.Len(cell.QueueID(q)) }

// Requestable returns how many cells of q the scheduler may still
// request (buffered cells minus requests already in flight).
func (b *Buffer) Requestable(q Queue) int { return b.inner.Requestable(cell.QueueID(q)) }

// Now returns the current slot number.
func (b *Buffer) Now() uint64 { return uint64(b.inner.Now()) }

// Stats returns a statistics snapshot.
func (b *Buffer) Stats() Stats {
	s := b.inner.Stats()
	return Stats{
		Arrivals: s.Arrivals, Requests: s.Requests, Deliveries: s.Deliveries,
		Bypasses: s.Bypasses, Misses: s.Misses, Drops: s.Drops,
		BadRequests:                 s.BadRequests,
		TailSRAMHighWater:           s.TailHighWater,
		HeadSRAMHighWater:           s.HeadHighWater,
		MaxRequestRegisterOccupancy: s.DSS.MaxOccupancy,
		MaxRequestSkips:             s.DSS.MaxSkips,
	}
}

// Sizing reports the dimensioned structure sizes for a configuration
// without building the buffer — the paper's equations (1)-(4).
type Sizing struct {
	// GranularityB is the RADS granularity B for the line rate.
	GranularityB int
	// Lookahead is the ECQF full lookahead Q(b−1)+1.
	Lookahead int
	// HeadSRAMCells / TailSRAMCells are the SRAM sizes in 64 B cells.
	HeadSRAMCells, TailSRAMCells int
	// RequestRegister is equation (1)'s RR size.
	RequestRegister int
	// MaxSkips is equation (2)'s reordering bound.
	MaxSkips int
	// LatencySlots is equation (3)'s latency register size.
	LatencySlots int
	// DelaySlots is the total request-to-delivery pipeline length.
	DelaySlots int
}

// DimensionFor computes the paper's sizing for a configuration.
func DimensionFor(cfg Config) (Sizing, error) {
	rate := cfg.LineRate.internal()
	bigB := rate.Granularity(cell.DefaultDRAMAccessNS)
	b := cfg.Granularity
	if b == 0 {
		b = bigB
	}
	banks := cfg.Banks
	if banks == 0 {
		banks = 256
	}
	look := cfg.Lookahead
	if look == 0 {
		look = dimension.FullLookahead(cfg.Queues, b)
	}
	d := dimension.Config{Q: cfg.Queues, B: bigB, Bsmall: b, M: banks, Lookahead: look}
	if err := d.Validate(); err != nil {
		return Sizing{}, err
	}
	return Sizing{
		GranularityB:    bigB,
		Lookahead:       look,
		HeadSRAMCells:   d.HeadSRAMSize(),
		TailSRAMCells:   d.TailSRAMSize(),
		RequestRegister: d.RRSize(),
		MaxSkips:        d.MaxSkips(),
		LatencySlots:    d.LatencySlots(),
		DelaySlots:      d.DelaySlots(),
	}, nil
}
