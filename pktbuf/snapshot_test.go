package pktbuf_test

import (
	"bytes"
	"errors"
	"testing"

	"repro/pktbuf"
)

// TestSnapshotRoundTrip pins the public crash-safety contract: a
// restored buffer continues a run exactly where the original stopped —
// same deliveries, same statistics, same clock.
func TestSnapshotRoundTrip(t *testing.T) {
	cfg := pktbuf.Config{Queues: 8, LineRate: pktbuf.OC3072, Granularity: 4, Banks: 16}
	mk := func() *pktbuf.Buffer {
		buf, err := pktbuf.New(cfg)
		if err != nil {
			t.Fatal(err)
		}
		return buf
	}
	ref, live := mk(), mk()

	drive := func(b *pktbuf.Buffer, from, to int) []pktbuf.Output {
		t.Helper()
		var outs []pktbuf.Output
		for i := from; i < to; i++ {
			in := pktbuf.Input{Arrival: pktbuf.Queue(i % cfg.Queues), Request: pktbuf.None}
			if q := pktbuf.Queue((i / 2) % cfg.Queues); i%2 == 1 && b.Requestable(q) > 0 {
				in.Request = q
			}
			out, err := b.Tick(in)
			if err != nil {
				t.Fatalf("slot %d: %v", i, err)
			}
			outs = append(outs, out)
		}
		return outs
	}

	const cut, end = 500, 1000
	drive(ref, 0, cut)
	drive(live, 0, cut)

	var snap bytes.Buffer
	if err := live.Snapshot(&snap); err != nil {
		t.Fatalf("Snapshot: %v", err)
	}
	restored, err := pktbuf.Restore(&snap, cfg)
	if err != nil {
		t.Fatalf("Restore: %v", err)
	}

	wantOut := drive(ref, cut, end)
	gotOut := drive(restored, cut, end)
	for i := range wantOut {
		if gotOut[i] != wantOut[i] {
			t.Fatalf("slot %d after restore: got %+v, want %+v", cut+i, gotOut[i], wantOut[i])
		}
	}
	if got, want := restored.Stats(), ref.Stats(); got != want {
		t.Errorf("stats diverge:\nrestored %+v\nref      %+v", got, want)
	}
	if restored.Now() != ref.Now() {
		t.Errorf("clock diverges: restored %d, ref %d", restored.Now(), ref.Now())
	}
}

// TestRestoreRejectsMismatch pins the config-echo gate and its public
// sentinel.
func TestRestoreRejectsMismatch(t *testing.T) {
	cfg := pktbuf.Config{Queues: 4, LineRate: pktbuf.OC3072, Granularity: 4, Banks: 16}
	buf, err := pktbuf.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	var snap bytes.Buffer
	if err := buf.Snapshot(&snap); err != nil {
		t.Fatal(err)
	}
	other := cfg
	other.Queues = 8
	if _, err := pktbuf.Restore(&snap, other); !errors.Is(err, pktbuf.ErrSnapshot) {
		t.Fatalf("Restore with mismatched config = %v, want ErrSnapshot", err)
	}
}
