package pktbuf_test

import (
	"errors"
	"testing"

	"repro/pktbuf"
)

// small returns a compact valid configuration to mutate in tests.
func small() pktbuf.Config {
	return pktbuf.Config{Queues: 4, LineRate: pktbuf.OC768, Granularity: 2, Banks: 64}
}

func TestErrBufferFullThroughFacade(t *testing.T) {
	cfg := small()
	cfg.BankCapacityBlocks = 1
	buf, err := pktbuf.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	var full error
	for i := 0; i < 100000 && full == nil; i++ {
		if _, err := buf.Tick(pktbuf.Input{Arrival: 0, Request: pktbuf.None}); err != nil {
			full = err
		}
	}
	if full == nil {
		t.Fatal("bounded DRAM never filled")
	}
	if !errors.Is(full, pktbuf.ErrBufferFull) {
		t.Errorf("errors.Is(%v, ErrBufferFull) = false", full)
	}
	if errors.Is(full, pktbuf.ErrBadRequest) || errors.Is(full, pktbuf.ErrUnknownQueue) {
		t.Errorf("%v matches unrelated sentinels", full)
	}
}

func TestErrUnknownQueueThroughFacade(t *testing.T) {
	buf, err := pktbuf.New(small())
	if err != nil {
		t.Fatal(err)
	}
	_, err = buf.Tick(pktbuf.Input{Arrival: 99, Request: pktbuf.None})
	if !errors.Is(err, pktbuf.ErrUnknownQueue) {
		t.Errorf("arrival for queue 99: err = %v, want ErrUnknownQueue", err)
	}
}

func TestErrBadRequestThroughFacade(t *testing.T) {
	buf, err := pktbuf.New(small())
	if err != nil {
		t.Fatal(err)
	}
	// Requesting an empty queue and requesting out of range both
	// surface as ErrBadRequest (nothing is requestable either way).
	for _, q := range []pktbuf.Queue{2, 99} {
		_, err = buf.Tick(pktbuf.Input{Arrival: pktbuf.None, Request: q})
		if !errors.Is(err, pktbuf.ErrBadRequest) {
			t.Errorf("request for queue %d: err = %v, want ErrBadRequest", q, err)
		}
	}
}

func TestErrBadConfigFromNew(t *testing.T) {
	cases := map[string]pktbuf.Config{
		"zero queues":       {LineRate: pktbuf.OC768, Banks: 64},
		"negative queues":   {Queues: -1, LineRate: pktbuf.OC768, Banks: 64},
		"unknown line rate": {Queues: 4, LineRate: pktbuf.LineRate(42), Banks: 64},
		"non-divisor b":     {Queues: 4, LineRate: pktbuf.OC768, Granularity: 3, Banks: 64},
		"b over B":          {Queues: 4, LineRate: pktbuf.OC768, Granularity: 64, Banks: 64},
		"negative banks":    {Queues: 4, LineRate: pktbuf.OC768, Granularity: 2, Banks: -8},
		"unknown org":       {Queues: 4, LineRate: pktbuf.OC768, Granularity: 2, Banks: 64, Organization: pktbuf.Organization(7)},
		"unknown mma":       {Queues: 4, LineRate: pktbuf.OC768, Granularity: 2, Banks: 64, MMA: pktbuf.MMA(9)},
	}
	for name, cfg := range cases {
		if _, err := pktbuf.New(cfg); !errors.Is(err, pktbuf.ErrBadConfig) {
			t.Errorf("%s: New err = %v, want ErrBadConfig", name, err)
		}
	}
}

func TestDimensionForValidation(t *testing.T) {
	bad := map[string]pktbuf.Config{
		"zero queues":       {LineRate: pktbuf.OC3072},
		"negative queues":   {Queues: -5, LineRate: pktbuf.OC3072},
		"unknown line rate": {Queues: 64, LineRate: pktbuf.LineRate(-1)},
		"negative b":        {Queues: 64, LineRate: pktbuf.OC3072, Granularity: -2},
		"b over B":          {Queues: 64, LineRate: pktbuf.OC3072, Granularity: 64},
		"non-divisor b":     {Queues: 64, LineRate: pktbuf.OC3072, Granularity: 5},
		"negative banks":    {Queues: 64, LineRate: pktbuf.OC3072, Granularity: 4, Banks: -1},
		"negative lookhead": {Queues: 64, LineRate: pktbuf.OC3072, Granularity: 4, Lookahead: -7},
	}
	for name, cfg := range bad {
		if _, err := pktbuf.DimensionFor(cfg); !errors.Is(err, pktbuf.ErrBadConfig) {
			t.Errorf("%s: DimensionFor err = %v, want ErrBadConfig", name, err)
		}
	}
	// EstimateTechnology shares the validation path and additionally
	// rejects unknown organizations.
	if _, err := pktbuf.EstimateTechnology(pktbuf.Config{Queues: 4, LineRate: pktbuf.LineRate(7)}); !errors.Is(err, pktbuf.ErrBadConfig) {
		t.Error("EstimateTechnology accepted an unknown line rate")
	}
	if _, err := pktbuf.EstimateTechnology(pktbuf.Config{Queues: 4, LineRate: pktbuf.OC768, Organization: pktbuf.Organization(3)}); !errors.Is(err, pktbuf.ErrBadConfig) {
		t.Error("EstimateTechnology accepted an unknown organization")
	}
	// OptimalGranularity reports infeasible (0) rather than guessing a
	// rate for invalid input.
	if b := pktbuf.OptimalGranularity(64, pktbuf.LineRate(42), pktbuf.GlobalCAM); b != 0 {
		t.Errorf("OptimalGranularity with unknown rate = %d, want 0", b)
	}
	// The resolved granularity is reported back.
	s, err := pktbuf.DimensionFor(pktbuf.Config{Queues: 64, LineRate: pktbuf.OC3072})
	if err != nil {
		t.Fatal(err)
	}
	if s.Granularity != s.GranularityB || s.GranularityB != 32 {
		t.Errorf("RADS default sizing = %+v, want b = B = 32", s)
	}
}

func TestTickBatch(t *testing.T) {
	buf, err := pktbuf.New(small())
	if err != nil {
		t.Fatal(err)
	}
	// Fill 8 cells into queue 1 in one batch, then drain with
	// per-batch request slots; compare against per-Tick semantics.
	fill := make([]pktbuf.Input, 8)
	for i := range fill {
		fill[i] = pktbuf.Input{Arrival: 1, Request: pktbuf.None}
	}
	out := make([]pktbuf.Output, len(fill))
	n, err := buf.TickBatch(fill, out)
	if err != nil || n != len(fill) {
		t.Fatalf("TickBatch = (%d, %v), want (%d, nil)", n, err, len(fill))
	}
	if got := buf.Len(1); got != 8 {
		t.Fatalf("Len(1) = %d after batch fill, want 8", got)
	}
	var got []pktbuf.Cell
	step := make([]pktbuf.Input, 16)
	outs := make([]pktbuf.Output, 16)
	for round := 0; round < 500 && len(got) < 8; round++ {
		for i := range step {
			step[i] = pktbuf.Input{Arrival: pktbuf.None, Request: pktbuf.None}
		}
		if buf.Requestable(1) > 0 {
			step[0].Request = 1
		}
		if _, err := buf.TickBatch(step, outs); err != nil {
			t.Fatal(err)
		}
		for _, o := range outs {
			if o.Ok {
				got = append(got, o.Delivered)
			}
		}
	}
	if len(got) != 8 {
		t.Fatalf("delivered %d cells via TickBatch, want 8", len(got))
	}
	for i, c := range got {
		if c.Queue != 1 || c.Seq != uint64(i) {
			t.Errorf("cell %d = %+v, want queue 1 seq %d", i, c, i)
		}
	}
}

func TestTickBatchErrors(t *testing.T) {
	buf, err := pktbuf.New(small())
	if err != nil {
		t.Fatal(err)
	}
	in := make([]pktbuf.Input, 4)
	if n, err := buf.TickBatch(in, make([]pktbuf.Output, 3)); err == nil || n != 0 {
		t.Errorf("short output slice: TickBatch = (%d, %v), want (0, error)", n, err)
	}
	// An error mid-batch stops after the offending slot.
	for i := range in {
		in[i] = pktbuf.Input{Arrival: 0, Request: pktbuf.None}
	}
	in[2].Arrival = 99 // unknown queue
	out := make([]pktbuf.Output, len(in))
	n, err := buf.TickBatch(in, out)
	if n != 3 || !errors.Is(err, pktbuf.ErrUnknownQueue) {
		t.Errorf("TickBatch = (%d, %v), want (3, ErrUnknownQueue)", n, err)
	}
	// The preceding slots completed: two cells of queue 0 arrived.
	if got := buf.Len(0); got != 2 {
		t.Errorf("Len(0) = %d after aborted batch, want 2", got)
	}
}
