package pktbuf_test

import (
	"testing"

	"repro/pktbuf"
)

func TestStatsSub(t *testing.T) {
	prev := pktbuf.Stats{
		Arrivals: 100, Requests: 90, Deliveries: 80, Bypasses: 40,
		Misses: 1, Drops: 2, BadRequests: 3,
		TailSRAMHighWater: 7, HeadSRAMHighWater: 5,
		MaxRequestRegisterOccupancy: 4, MaxRequestSkips: 2,
		FastForwardedSlots: 1000,
	}
	cur := pktbuf.Stats{
		Arrivals: 150, Requests: 140, Deliveries: 130, Bypasses: 60,
		Misses: 1, Drops: 5, BadRequests: 4,
		TailSRAMHighWater: 9, HeadSRAMHighWater: 5,
		MaxRequestRegisterOccupancy: 6, MaxRequestSkips: 2,
		FastForwardedSlots: 1200,
	}
	want := pktbuf.Stats{
		Arrivals: 50, Requests: 50, Deliveries: 50, Bypasses: 20,
		Misses: 0, Drops: 3, BadRequests: 1,
		// Peaks are run-wide properties: Sub keeps the current values.
		TailSRAMHighWater: 9, HeadSRAMHighWater: 5,
		MaxRequestRegisterOccupancy: 6, MaxRequestSkips: 2,
		FastForwardedSlots: 200,
	}
	if got := cur.Sub(prev); got != want {
		t.Fatalf("cur.Sub(prev) = %+v, want %+v", got, want)
	}
	// Sub against a zero snapshot is the identity.
	if got := cur.Sub(pktbuf.Stats{}); got != cur {
		t.Fatalf("cur.Sub(zero) = %+v, want %+v", got, cur)
	}
}

// TestStatsSubLive exercises Sub on real engine snapshots: interval
// deltas must add back up to the final cumulative counters.
func TestStatsSubLive(t *testing.T) {
	buf, err := pktbuf.New(pktbuf.Config{
		Queues: 4, LineRate: pktbuf.OC768, Granularity: 2, Banks: 64,
	})
	if err != nil {
		t.Fatal(err)
	}
	feed := func(n int) {
		for i := 0; i < n; i++ {
			in := pktbuf.Input{Arrival: pktbuf.Queue(i % 4), Request: pktbuf.None}
			if _, err := buf.Tick(in); err != nil {
				t.Fatal(err)
			}
		}
	}
	feed(32)
	mid := buf.Stats()
	feed(16)
	delta := buf.Stats().Sub(mid)
	if delta.Arrivals != 16 {
		t.Fatalf("interval delta arrivals = %d, want 16", delta.Arrivals)
	}
	if total := mid.Sub(pktbuf.Stats{}).Arrivals + delta.Arrivals; total != buf.Stats().Arrivals {
		t.Fatalf("deltas sum to %d arrivals, cumulative says %d", total, buf.Stats().Arrivals)
	}
}
