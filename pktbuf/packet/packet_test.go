package packet_test

import (
	"bytes"
	"errors"
	"testing"

	"repro/pktbuf"
	"repro/pktbuf/packet"
)

func TestSegmentReassembleRoundTrip(t *testing.T) {
	var s packet.Segmenter
	r := packet.NewReassembler()
	payload := bytes.Repeat([]byte{0x5A}, 3*packet.CellPayload+11)
	cells := s.Segment(packet.Packet{Flow: 7, Payload: payload})
	if len(cells) != packet.CellCount(len(payload)) {
		t.Fatalf("got %d cells, want %d", len(cells), packet.CellCount(len(payload)))
	}
	if !cells[0].Head || cells[0].Cells != len(cells) {
		t.Errorf("head cell = %+v", cells[0])
	}
	for i, c := range cells {
		p, ok, err := r.Push(c)
		if err != nil {
			t.Fatal(err)
		}
		if ok != (i == len(cells)-1) {
			t.Fatalf("cell %d: ok=%v", i, ok)
		}
		if ok {
			if p.Flow != 7 || !bytes.Equal(p.Payload, payload) {
				t.Errorf("reassembled %+v", p)
			}
		}
	}
	if s.Segmented() != uint64(len(cells)) || r.Completed() != 1 || r.Pending() != 0 {
		t.Errorf("counters: segmented=%d completed=%d pending=%d", s.Segmented(), r.Completed(), r.Pending())
	}
}

func TestSegmentAppendZeroAlloc(t *testing.T) {
	var s packet.Segmenter
	payload := bytes.Repeat([]byte{1}, 6*packet.CellPayload)
	dst := s.SegmentAppend(make([]packet.Cell, 0, 8), packet.Packet{Flow: 1, Payload: payload})
	if len(dst) != 6 {
		t.Fatalf("got %d cells", len(dst))
	}
	allocs := testing.AllocsPerRun(50, func() {
		dst = s.SegmentAppend(dst[:0], packet.Packet{Flow: 1, Payload: payload})
	})
	if allocs != 0 {
		t.Errorf("SegmentAppend into capacity allocated %.1f/op", allocs)
	}
}

func TestReassembleErrors(t *testing.T) {
	r := packet.NewReassembler()
	if _, _, err := r.Push(packet.Cell{Flow: 5}); !errors.Is(err, packet.ErrOrphanCell) {
		t.Errorf("err = %v, want ErrOrphanCell", err)
	}
	if _, _, err := r.Push(packet.Cell{Flow: 5, Head: true, Cells: 2}); err != nil {
		t.Fatal(err)
	}
	if _, _, err := r.Push(packet.Cell{Flow: 5, Head: true, Cells: 2}); !errors.Is(err, packet.ErrInterleaved) {
		t.Errorf("err = %v, want ErrInterleaved", err)
	}
}

func TestEmptyPacket(t *testing.T) {
	var s packet.Segmenter
	r := packet.NewReassembler()
	cells := s.Segment(packet.Packet{Flow: 2})
	if len(cells) != 1 || !cells[0].Head || len(cells[0].Payload) != 0 {
		t.Fatalf("empty packet cells = %+v", cells)
	}
	p, ok, err := r.Push(cells[0])
	if err != nil || !ok {
		t.Fatalf("push: ok=%v err=%v", ok, err)
	}
	if p.Flow != 2 || len(p.Payload) != 0 {
		t.Errorf("reassembled %+v", p)
	}
}

// FuzzSegmentReassemble round-trips arbitrary payloads through
// Segmenter→Reassembler and asserts the identity, for any flow id and
// any interleaving position of a second flow.
func FuzzSegmentReassemble(f *testing.F) {
	f.Add([]byte(nil), int32(0), uint8(0))
	f.Add([]byte("hello"), int32(3), uint8(1))
	f.Add(bytes.Repeat([]byte{0xAB}, 5*packet.CellPayload+1), int32(200), uint8(3))
	f.Fuzz(func(t *testing.T, payload []byte, flow int32, interleave uint8) {
		if flow < 0 {
			flow = -flow
		}
		var s packet.Segmenter
		r := packet.NewReassembler()
		cells := s.Segment(packet.Packet{Flow: pktbuf.Queue(flow), Payload: payload})
		if len(cells) != packet.CellCount(len(payload)) {
			t.Fatalf("segmented %d cells, want %d", len(cells), packet.CellCount(len(payload)))
		}
		// A second flow interleaves its head cell at an arbitrary
		// position; flows must reassemble independently.
		other := packet.Packet{Flow: pktbuf.Queue(flow) + 1, Payload: []byte{1, 2, 3}}
		otherCells := s.Segment(other)
		pos := int(interleave) % (len(cells) + 1)

		var got packet.Packet
		var done bool
		push := func(c packet.Cell) {
			p, ok, err := r.Push(c)
			if err != nil {
				t.Fatal(err)
			}
			if ok && p.Flow == pktbuf.Queue(flow) {
				if done {
					t.Fatal("packet completed twice")
				}
				got, done = p, true
			}
		}
		for i, c := range cells {
			if i == pos {
				push(otherCells[0])
			}
			push(c)
		}
		if pos == len(cells) {
			push(otherCells[0])
		}
		if !done {
			t.Fatal("packet never completed")
		}
		if !bytes.Equal(got.Payload, payload) {
			t.Fatalf("payload mismatch: %d bytes in, %d bytes out", len(payload), len(got.Payload))
		}
		if r.Pending() != 0 {
			t.Fatalf("pending flows = %d", r.Pending())
		}
	})
}
