// Package packet is the public segmentation and reassembly layer of
// the paper's §2: "packets in the router are internally fragmented
// into fixed-length 64 byte units that we call cells. Cells are
// handled as independent units, although they are reassembled at the
// output port before packet transmission."
//
// A Segmenter slices variable-length packets into cells tagged with
// the packet's flow (the VOQ); a Reassembler collects in-order cells
// per flow and emits completed packets. Because the packet buffer
// guarantees per-VOQ FIFO delivery, reassembly needs no sequence
// numbers beyond a per-packet cell count carried in the first cell's
// header — exactly the discipline real line cards use.
//
// The package is a thin value-converting façade over the internal
// implementation the router engine (repro/pktbuf/router) uses, so a
// caller composing its own fabric gets the same segmentation the
// engine applies. SegmentAppend is the zero-allocation path; errors
// are typed sentinels matched with errors.Is.
package packet

import (
	"repro/internal/cell"
	ipacket "repro/internal/packet"
	"repro/pktbuf"
)

// CellPayload is the number of packet bytes one 64-byte cell carries
// after the internal header (flow id, cell count, length). The
// paper's cell is 64 bytes; the model reserves an 8-byte header.
const CellPayload = ipacket.CellPayload

// Errors returned by the reassembler, matched with errors.Is.
var (
	// ErrInterleaved reports a head cell arriving while the same flow
	// still had a partially reassembled packet — within one flow,
	// packets must not interleave.
	ErrInterleaved = ipacket.ErrInterleaved
	// ErrOrphanCell reports a continuation cell for a flow with no
	// packet head in progress.
	ErrOrphanCell = ipacket.ErrOrphanCell
)

// Packet is a variable-length unit entering or leaving the router.
type Packet struct {
	// Flow identifies the (output port, class) stream — the VOQ.
	Flow pktbuf.Queue
	// Payload is the packet body.
	Payload []byte
}

// Cell is one segmented 64-byte unit: the flow identity the buffer
// transports plus the reassembly header fields.
type Cell struct {
	// Flow is the VOQ the cell travels in.
	Flow pktbuf.Queue
	// Head marks the first cell of a packet; Cells is the packet's
	// total cell count (valid on the head cell).
	Head  bool
	Cells int
	// Payload is this cell's slice of the packet body (it aliases the
	// segmented packet's payload).
	Payload []byte
}

// CellCount returns how many cells Segment produces for a packet of
// the given byte length (at least one: zero-length packets still
// occupy a head cell, as on real hardware).
func CellCount(bytes int) int { return ipacket.CellCount(bytes) }

// Segmenter slices packets into cells. It applies the same
// fragmentation rule as the internal layer (same CellPayload, same
// head-cell header), so cells it produces reassemble interchangeably
// with the engine's.
type Segmenter struct {
	segmented uint64
}

// Segment fragments p into CellCount(len(p.Payload)) cells. Cell
// payloads alias p.Payload.
func (s *Segmenter) Segment(p Packet) []Cell {
	return s.SegmentAppend(make([]Cell, 0, CellCount(len(p.Payload))), p)
}

// SegmentAppend fragments p like Segment but appends the cells to dst
// and returns the extended slice, allocating only when dst lacks
// capacity — a caller reusing its backing array segments packets with
// zero steady-state allocation.
func (s *Segmenter) SegmentAppend(dst []Cell, p Packet) []Cell {
	n := CellCount(len(p.Payload))
	for i := 0; i < n; i++ {
		lo := i * CellPayload
		hi := lo + CellPayload
		if hi > len(p.Payload) {
			hi = len(p.Payload)
		}
		dst = append(dst, Cell{
			Flow:    p.Flow,
			Head:    i == 0,
			Cells:   n,
			Payload: p.Payload[lo:hi],
		})
	}
	s.segmented += uint64(n)
	return dst
}

// Segmented returns the number of cells produced so far.
func (s *Segmenter) Segmented() uint64 { return s.segmented }

// Reassembler rebuilds packets from per-flow in-order cell streams
// (one Reassembler per output port). Flows may interleave with each
// other arbitrarily; within a flow, cells must arrive in order — the
// packet buffer guarantees exactly that.
type Reassembler struct {
	inner *ipacket.Reassembler
}

// NewReassembler returns an empty reassembler.
func NewReassembler() *Reassembler {
	return &Reassembler{inner: ipacket.NewReassembler()}
}

// Push accepts the next cell of a flow. When the cell completes a
// packet it returns the packet and ok=true. The returned payload is
// freshly assembled and owned by the caller.
func (r *Reassembler) Push(c Cell) (Packet, bool, error) {
	p, err := r.inner.Push(ipacket.SegCell{
		Flow:    cell.QueueID(c.Flow),
		Head:    c.Head,
		Cells:   c.Cells,
		Payload: c.Payload,
	})
	if err != nil || p == nil {
		return Packet{}, false, err
	}
	return Packet{Flow: pktbuf.Queue(p.Flow), Payload: p.Payload}, true, nil
}

// Pending returns the number of flows with a partially reassembled
// packet.
func (r *Reassembler) Pending() int { return r.inner.Pending() }

// Completed returns the number of packets emitted.
func (r *Reassembler) Completed() uint64 { return r.inner.Completed() }
