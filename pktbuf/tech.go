package pktbuf

import (
	"fmt"

	"repro/internal/cacti"
	"repro/internal/cell"
	"repro/internal/dimension"
)

// TechEstimate is the 0.13 µm technology cost of one buffer design
// point, from the CACTI-style model the paper's §7/§8 evaluation uses.
type TechEstimate struct {
	// HeadSRAMCells / TailSRAMCells are the dimensioned sizes.
	HeadSRAMCells, TailSRAMCells int
	// AccessNS is the most-restricting SRAM access time (the larger
	// array) in the chosen organization.
	AccessNS float64
	// AreaCM2 is the combined h+t SRAM area.
	AreaCM2 float64
	// BudgetNS is the per-cell budget at the line rate.
	BudgetNS float64
	// Feasible reports AccessNS ≤ BudgetNS.
	Feasible bool
}

// EstimateTechnology evaluates a configuration against the paper's
// technology model: can the SRAMs of this design point actually cycle
// at the line rate, and what would they cost in silicon?
func EstimateTechnology(cfg Config) (TechEstimate, error) {
	rate, err := cfg.LineRate.internal()
	if err != nil {
		return TechEstimate{}, err
	}
	s, err := DimensionFor(cfg)
	if err != nil {
		return TechEstimate{}, err
	}
	var org cacti.Org
	switch cfg.Organization {
	case GlobalCAM:
		org = cacti.OrgCAM
	case UnifiedLinkedList:
		org = cacti.OrgLinkedList
	default:
		return TechEstimate{}, fmt.Errorf("%w: unknown Organization(%d)", ErrBadConfig, int(cfg.Organization))
	}
	larger := s.HeadSRAMCells
	if s.TailSRAMCells > larger {
		larger = s.TailSRAMCells
	}
	est := TechEstimate{
		HeadSRAMCells: s.HeadSRAMCells,
		TailSRAMCells: s.TailSRAMCells,
		AccessNS:      cacti.ForCells(org, larger).AccessNS,
		AreaCM2: cacti.ForCells(org, s.HeadSRAMCells).AreaCM2 +
			cacti.ForCells(org, s.TailSRAMCells).AreaCM2,
		BudgetNS: rate.AccessBudgetNS(),
	}
	est.Feasible = est.AccessNS <= est.BudgetNS
	return est, nil
}

// OptimalGranularity searches the granularities dividing B for the
// design with the smallest request-to-delivery delay whose SRAMs still
// meet the line-rate budget. It returns 0 if no granularity is
// feasible (the §7.2 RADS-at-OC-3072 situation).
func OptimalGranularity(queues int, rate LineRate, org Organization) int {
	irate, err := rate.internal()
	if err != nil {
		return 0
	}
	bigB := irate.Granularity(cell.DefaultDRAMAccessNS)
	best, bestDelay := 0, 0
	for b := 1; b <= bigB; b *= 2 {
		cfg := Config{Queues: queues, LineRate: rate, Granularity: b, Organization: org}
		est, err := EstimateTechnology(cfg)
		if err != nil || !est.Feasible {
			continue
		}
		d := dimension.Config{
			Q: queues, B: bigB, Bsmall: b, M: 256,
			Lookahead: dimension.FullLookahead(queues, b),
		}
		delay := d.DelaySlots()
		if best == 0 || delay < bestDelay {
			best, bestDelay = b, delay
		}
	}
	return best
}
