package pktbuf

import (
	"io"

	"repro/internal/core"
)

// Snapshot-related sentinels, matched with errors.Is.
var (
	// ErrSnapshot reports a snapshot rejected by Restore: truncated,
	// internally inconsistent, or taken from a buffer with a different
	// configuration than the one passed to Restore.
	ErrSnapshot = core.ErrSnapshot
	// ErrSnapshotVersion reports a snapshot whose layout version this
	// build does not read.
	ErrSnapshotVersion = core.ErrSnapshotVersion
)

// Snapshot serializes the buffer's complete state to w as a versioned,
// line-oriented text stream. Restore reconstructs a buffer that is
// bit-identical to this one: it produces the same deliveries, the same
// statistics and the same slot clock for any subsequent stimulus as
// the original would have, so a crash between a Snapshot and the next
// arrival loses nothing.
//
// Snapshot must not run concurrently with Tick or TickBatch; take it
// from the goroutine that drives the buffer (the serve package's
// checkpointing does exactly that at batch boundaries).
func (b *Buffer) Snapshot(w io.Writer) error { return b.inner.Snapshot(w) }

// Restore reconstructs a buffer from a stream written by Snapshot.
// cfg must be the configuration the snapshotted buffer was built with;
// a mismatch returns an error matching ErrSnapshot rather than a
// subtly wrong buffer, and an unreadable layout version returns one
// matching ErrSnapshotVersion.
func Restore(r io.Reader, cfg Config) (*Buffer, error) {
	cc, err := coreConfig(cfg)
	if err != nil {
		return nil, err
	}
	inner, err := core.RestoreBuffer(r, cc)
	if err != nil {
		return nil, err
	}
	return &Buffer{inner: inner, cfg: cfg}, nil
}
