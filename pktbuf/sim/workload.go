package sim

import (
	"repro/internal/cell"
	isim "repro/internal/sim"
	"repro/pktbuf"
)

// The generators below re-export the internal workload suite through
// the public types. Each adapter is allocation-free per slot: queue
// ids convert by value, batch generation reuses a scratch buffer, and
// the request-side view adapter is cached on the policy.

// arrivals adapts an internal arrival process. It always implements
// BatchArrivalProcess, falling back to a per-slot loop when the inner
// process has no batch path; when the inner process is sparse
// (isim.SparseArrivalProcess) the Runner fast-forwards through it
// directly via the sparse field.
type arrivals struct {
	inner   isim.ArrivalProcess
	batch   isim.BatchArrivalProcess  // nil when inner is per-slot only
	sparse  isim.SparseArrivalProcess // nil when inner has no gap jump
	scratch []cell.QueueID
}

func newArrivals(inner isim.ArrivalProcess) *arrivals {
	a := &arrivals{inner: inner}
	if b, ok := inner.(isim.BatchArrivalProcess); ok {
		a.batch = b
	}
	if s, ok := inner.(isim.SparseArrivalProcess); ok {
		a.sparse = s
	}
	return a
}

// Next implements ArrivalProcess.
func (a *arrivals) Next(slot uint64) pktbuf.Queue {
	return pktbuf.Queue(a.inner.Next(cell.Slot(slot)))
}

// NextBatch implements BatchArrivalProcess.
func (a *arrivals) NextBatch(start uint64, out []pktbuf.Queue) {
	if a.batch == nil {
		for i := range out {
			out[i] = pktbuf.Queue(a.inner.Next(cell.Slot(start) + cell.Slot(i)))
		}
		return
	}
	if cap(a.scratch) < len(out) {
		a.scratch = make([]cell.QueueID, len(out))
	}
	s := a.scratch[:len(out)]
	a.batch.NextBatch(cell.Slot(start), s)
	for i, q := range s {
		out[i] = pktbuf.Queue(q)
	}
}

// viewAdapter presents a public View to an internal request policy.
type viewAdapter struct{ v View }

func (w *viewAdapter) Requestable(q cell.QueueID) int { return w.v.Requestable(pktbuf.Queue(q)) }
func (w *viewAdapter) Len(q cell.QueueID) int         { return w.v.Len(pktbuf.Queue(q)) }

// requests adapts an internal request policy.
type requests struct {
	inner isim.RequestPolicy
	view  viewAdapter
}

// Next implements RequestPolicy.
func (r *requests) Next(slot uint64, v View) pktbuf.Queue {
	r.view.v = v
	return pktbuf.Queue(r.inner.Next(cell.Slot(slot), &r.view))
}

// nextDirect is the Runner's fast path: when the view is the buffer
// itself, the internal policy probes the core buffer directly instead
// of going through the public-view adapter stack.
func (r *requests) nextDirect(slot uint64, v isim.View) pktbuf.Queue {
	return pktbuf.Queue(r.inner.Next(cell.Slot(slot), v))
}

// IdleStable implements StableRequestPolicy by delegating to the
// wrapped internal policy; policies without the marker report false.
func (r *requests) IdleStable() bool {
	s, ok := r.inner.(isim.StableRequestPolicy)
	return ok && s.IdleStable()
}

// ---------------------------------------------------------------- arrivals

// NewUniformArrivals returns an arrival process with the given offered
// load (cells per slot, 0..1) spread uniformly over q queues.
func NewUniformArrivals(q int, load float64, seed int64) (ArrivalProcess, error) {
	inner, err := isim.NewUniformArrivals(q, load, seed)
	if err != nil {
		return nil, err
	}
	return newArrivals(inner), nil
}

// NewRoundRobinArrivals returns a deterministic round-robin arrival
// process at the given load.
func NewRoundRobinArrivals(q int, load float64) (ArrivalProcess, error) {
	inner, err := isim.NewRoundRobinArrivals(q, load)
	if err != nil {
		return nil, err
	}
	return newArrivals(inner), nil
}

// NewHotspotArrivals returns a skewed arrival process: fraction
// hotFrac of cells target queue 0, the rest spread uniformly.
func NewHotspotArrivals(q int, load, hotFrac float64, seed int64) (ArrivalProcess, error) {
	inner, err := isim.NewHotspotArrivals(q, load, hotFrac, seed)
	if err != nil {
		return nil, err
	}
	return newArrivals(inner), nil
}

// NewBernoulliArrivals returns a sparse Bernoulli arrival process with
// the given offered load (cells per slot, 0..1) spread uniformly over
// q queues. Its per-slot marginal matches NewUniformArrivals, but the
// geometric inter-arrival gaps are drawn directly (one RNG draw per
// arrival, not per slot), so it supports the Runner's fast-forward
// path: a load-ρ run with an idle-stable request policy costs
// O(ρ·slots) instead of O(slots).
func NewBernoulliArrivals(q int, load float64, seed int64) (ArrivalProcess, error) {
	inner, err := isim.NewBernoulliArrivals(q, load, seed)
	if err != nil {
		return nil, err
	}
	return newArrivals(inner), nil
}

// NewBurstyArrivals returns an on/off burst process with geometric
// burst and gap lengths (means meanOn and meanOff slots). The offered
// load is meanOn/(meanOn+meanOff).
func NewBurstyArrivals(q int, meanOn, meanOff float64, seed int64) (ArrivalProcess, error) {
	inner, err := isim.NewBurstyArrivals(q, meanOn, meanOff, seed)
	if err != nil {
		return nil, err
	}
	return newArrivals(inner), nil
}

// NewSingleQueueArrivals floods queue q with one cell per slot.
func NewSingleQueueArrivals(q pktbuf.Queue) ArrivalProcess {
	return newArrivals(isim.NewSingleQueueArrivals(cell.QueueID(q)))
}

// ---------------------------------------------------------------- requests

// NewRoundRobinDrain returns the §3 adversarial request policy: one
// cell per queue, cycling, skipping queues with nothing requestable.
func NewRoundRobinDrain(q int) (RequestPolicy, error) {
	inner, err := isim.NewRoundRobinDrain(q)
	if err != nil {
		return nil, err
	}
	return &requests{inner: inner}, nil
}

// NewUniformRequests returns a random request policy issuing requests
// at the given rate.
func NewUniformRequests(q int, rate float64, seed int64) (RequestPolicy, error) {
	inner, err := isim.NewUniformRequests(q, rate, seed)
	if err != nil {
		return nil, err
	}
	return &requests{inner: inner}, nil
}

// NewLongestFirst returns a policy that requests the queue with the
// most requestable cells — the opposite extreme of round-robin.
func NewLongestFirst(q int) (RequestPolicy, error) {
	inner, err := isim.NewLongestFirst(q)
	if err != nil {
		return nil, err
	}
	return &requests{inner: inner}, nil
}

// NewPermutationDrain cycles over the given queue permutation, one
// cell per visit — a rotated variant of the adversarial pattern.
func NewPermutationDrain(perm []pktbuf.Queue) (RequestPolicy, error) {
	p := make([]cell.QueueID, len(perm))
	for i, q := range perm {
		p[i] = cell.QueueID(q)
	}
	inner, err := isim.NewPermutationDrain(p)
	if err != nil {
		return nil, err
	}
	return &requests{inner: inner}, nil
}

// NewIdleRequests returns a policy that never issues requests
// (fill-only phases).
func NewIdleRequests() RequestPolicy {
	return &requests{inner: isim.NewIdleRequests()}
}
