// Package sim is the public simulation driver for the packet buffer:
// a slot-loop runner with a batched fast path, plus the workload
// generators the paper's worst-case analysis must survive — most
// importantly the §3 adversarial round-robin drain — and uniform,
// bursty on/off, hotspot and single-queue patterns for the average
// case.
//
// It is a thin, allocation-free layer over the internal driver,
// expressed entirely in the public pktbuf types: a Runner drives a
// *pktbuf.Buffer with an ArrivalProcess and a RequestPolicy, one slot
// at a time. Generators are deterministic given their seed, so every
// experiment is reproducible.
package sim

import (
	"errors"
	"fmt"

	"repro/internal/cell"
	"repro/internal/facade"
	isim "repro/internal/sim"
	"repro/pktbuf"
)

// View is the read-only buffer state a request policy may consult.
// Requesting a queue with zero Requestable cells is forbidden by the
// system model (§2), so every policy filters through this view.
// *pktbuf.Buffer implements View.
type View interface {
	// Requestable returns how many cells of q may still be requested.
	Requestable(q pktbuf.Queue) int
	// Len returns the number of cells of q in the buffer.
	Len(q pktbuf.Queue) int
}

// ArrivalProcess produces at most one arriving cell per slot.
type ArrivalProcess interface {
	// Next returns the queue of the cell arriving at slot, or
	// pktbuf.None for an idle slot.
	Next(slot uint64) pktbuf.Queue
}

// BatchArrivalProcess is the optional fast path Runner.RunBatch uses
// to hoist the per-slot interface dispatch out of the inner loop: one
// NextBatch call generates the arrivals for len(out) consecutive
// slots starting at start. Implementations must be equivalent to
// calling Next once per slot in order. Every generator constructed by
// this package implements it.
type BatchArrivalProcess interface {
	ArrivalProcess
	NextBatch(start uint64, out []pktbuf.Queue)
}

// SparseArrivalProcess is the optional fast path the Runner uses to
// fast-forward idle spans: NextArrival advances the process past the
// idle gap starting at slot from and returns the slot of its next
// arrival, exactly as if Next had been called once per slot in
// [from, returned) with every call returning pktbuf.None. If the next
// arrival falls at or beyond limit the process advances only through
// limit-1 and returns limit. NewBernoulliArrivals and
// NewBurstyArrivals produce sparse processes.
type SparseArrivalProcess interface {
	ArrivalProcess
	NextArrival(from, limit uint64) uint64
}

// RequestPolicy produces at most one scheduler request per slot.
type RequestPolicy interface {
	// Next returns the queue to request at slot, or pktbuf.None. The
	// returned queue must have Requestable > 0.
	Next(slot uint64, v View) pktbuf.Queue
}

// StableRequestPolicy marks policies the Runner may elide while
// fast-forwarding: Next ignores its slot argument, consumes no
// per-slot state (no RNG draw per call), and a call that returns
// pktbuf.None leaves the policy unchanged — so if it returns None
// once it keeps returning None until the buffer view changes. The
// deterministic policies of this package (round-robin drain, longest
// first, permutation drain, idle) report true; the rate-based random
// policy reports false.
type StableRequestPolicy interface {
	RequestPolicy
	// IdleStable reports that the contract above holds.
	IdleStable() bool
}

// Result summarizes one simulation run.
type Result struct {
	// Slots is the number of slots simulated.
	Slots uint64
	// Stats is the buffer's final statistics snapshot.
	Stats pktbuf.Stats
	// DropsAllowed reports whether ErrBufferFull was tolerated.
	DropsAllowed bool
}

// Clean reports whether the run upheld every worst-case guarantee
// (drops excluded when they were explicitly allowed).
func (r Result) Clean() bool {
	s := r.Stats
	if r.DropsAllowed {
		s.Drops = 0
	}
	return s.Clean()
}

// Runner drives a pktbuf.Buffer with an arrival process and a request
// policy, one slot at a time.
//
// The slot loop deliberately mirrors internal/sim.Runner rather than
// delegating to it: the public hot path must call pktbuf.Buffer.Tick
// directly (an adapter layer between the two runners would pay
// interface dispatch per slot and break the 0 allocs/op gate).
// Behavioural changes to either loop must be applied to both;
// TestRunBatchMatchesRun and the façade benchmarks guard the pairing.
type Runner struct {
	// Buffer is the system under test.
	Buffer *pktbuf.Buffer
	// Arrivals feeds the ingress; Requests models the fabric scheduler.
	Arrivals ArrivalProcess
	Requests RequestPolicy
	// AllowDrops tolerates ErrBufferFull (bounded-DRAM experiments);
	// any other error aborts the run.
	AllowDrops bool
	// OnDeliver, when set, observes every delivered cell.
	OnDeliver func(c pktbuf.Cell, bypassed bool)

	// arrScratch is the reused arrival batch buffer, so repeated
	// RunBatch calls allocate nothing.
	arrScratch []pktbuf.Queue
}

// Run simulates the given number of slots.
func (r *Runner) Run(slots uint64) (Result, error) {
	return r.RunBatch(slots, 1)
}

// defaultBatch is the RunBatch chunk size when the caller passes 0.
const defaultBatch = 4096

// RunBatch simulates the given number of slots in chunks of batch
// (0 selects a default). It is the fast path for long steady-state
// runs: arrivals are generated a whole chunk at a time for
// BatchArrivalProcess implementations, the delivery-callback and
// drop-tolerance branches are resolved per batch, and the Stats
// snapshot is taken once at the end of the run.
//
// When the arrival process is sparse (SparseArrivalProcess) and the
// request policy is idle-stable (StableRequestPolicy), idle spans are
// not ticked at all: as soon as a slot carries no request and the
// buffer reports Quiescent, the runner jumps straight to the next
// arrival with Buffer.FastForward — bit-identical to ticking every
// skipped slot, but O(1) per idle span — so a load-ρ run costs
// O(ρ·slots), not O(slots).
func (r *Runner) RunBatch(slots, batch uint64) (Result, error) {
	if r.Buffer == nil || r.Arrivals == nil || r.Requests == nil {
		return Result{}, fmt.Errorf("sim: runner needs Buffer, Arrivals and Requests: %w",
			pktbuf.ErrBadConfig)
	}
	if batch == 0 {
		batch = defaultBatch
	}
	res := Result{DropsAllowed: r.AllowDrops}
	buf := r.Buffer
	onDeliver := r.OnDeliver
	// Policies re-exported by this package can probe the core buffer
	// directly: the view they would otherwise see through the public
	// adapter is the buffer itself, so the adapter stack is pure
	// overhead on the per-slot path.
	reqAdapter, direct := r.Requests.(*requests)
	var coreView isim.View
	if direct {
		coreView = facade.CoreOf(buf)
	}
	// Sparse fast path: generators re-exported by this package carry
	// their inner sparse process (no per-call adapter conversions);
	// external implementations are used through the public interface.
	var sparseInner isim.SparseArrivalProcess
	var sparsePub SparseArrivalProcess
	if a, ok := r.Arrivals.(*arrivals); ok {
		sparseInner = a.sparse
	} else if s, ok := r.Arrivals.(SparseArrivalProcess); ok {
		sparsePub = s
	}
	sparse := sparseInner != nil || sparsePub != nil
	if sp, ok := r.Requests.(StableRequestPolicy); !ok || !sp.IdleStable() {
		sparse = false
	}
	batchArr, batched := r.Arrivals.(BatchArrivalProcess)
	if !sparse && batched && batch > 1 {
		if uint64(cap(r.arrScratch)) < batch {
			r.arrScratch = make([]pktbuf.Queue, batch)
		}
	} else {
		batched = false
	}
	for done := uint64(0); done < slots; {
		n := batch
		if left := slots - done; left < n {
			n = left
		}
		if batched {
			batchArr.NextBatch(buf.Now(), r.arrScratch[:n])
		}
		for i := uint64(0); i < n; {
			now := buf.Now()
			var in pktbuf.Input
			if sparse {
				// Policy first: a slot with a request can never be
				// skipped, and an idle-stable policy that answers None
				// would answer None for every skipped slot too (the view
				// does not change across a fast-forward). The dense path
				// below keeps the arrival-first call order the trace
				// recorder's slot pairing relies on.
				if direct {
					in.Request = reqAdapter.nextDirect(now, coreView)
				} else {
					in.Request = r.Requests.Next(now, buf)
				}
				if in.Request == pktbuf.None && buf.Quiescent() {
					var next uint64
					if sparseInner != nil {
						next = uint64(sparseInner.NextArrival(cell.Slot(now), cell.Slot(now+n-i)))
					} else {
						next = sparsePub.NextArrival(now, now+n-i)
					}
					if next > now {
						i += buf.FastForward(next - now)
						continue
					}
				}
				in.Arrival = r.Arrivals.Next(now)
			} else {
				if batched {
					in.Arrival = r.arrScratch[i]
				} else {
					in.Arrival = r.Arrivals.Next(now)
				}
				if direct {
					in.Request = reqAdapter.nextDirect(now, coreView)
				} else {
					in.Request = r.Requests.Next(now, buf)
				}
			}
			out, err := buf.Tick(in)
			if err != nil && !(r.AllowDrops && errors.Is(err, pktbuf.ErrBufferFull)) {
				res.Slots = done + i + 1
				res.Stats = buf.Stats()
				return res, fmt.Errorf("sim: slot %d: %w", done+i, err)
			}
			if out.Ok && onDeliver != nil {
				onDeliver(out.Delivered, out.Bypassed)
			}
			i++
		}
		done += n
	}
	res.Slots = slots
	res.Stats = buf.Stats()
	return res, nil
}

// Drain keeps requesting until the buffer is fully quiescent or
// maxSlots pass, with no further arrivals. It returns the number of
// cells delivered and the exact slot the last of them was delivered
// in (zero when nothing was delivered). Termination uses the buffer's
// quiescence predicate: the loop stops — without spending a slot —
// the moment the policy issues no request and an idle tick would be a
// pure time advance, so draining an already-empty buffer is O(1) and
// a populated one costs exactly the slots its pipeline and in-flight
// transfers need.
func (r *Runner) Drain(maxSlots uint64) (delivered, lastSlot uint64, err error) {
	buf := r.Buffer
	for s := uint64(0); s < maxSlots; s++ {
		in := pktbuf.Input{
			Arrival: pktbuf.None,
			Request: r.Requests.Next(buf.Now(), buf),
		}
		if in.Request == pktbuf.None && buf.Quiescent() {
			break
		}
		out, err := buf.Tick(in)
		if err != nil {
			return delivered, lastSlot, fmt.Errorf("sim: drain slot %d: %w", s, err)
		}
		if out.Ok {
			delivered++
			lastSlot = buf.Now() - 1
			if r.OnDeliver != nil {
				r.OnDeliver(out.Delivered, out.Bypassed)
			}
		}
	}
	return delivered, lastSlot, nil
}
