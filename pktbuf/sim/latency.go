package sim

import (
	"fmt"

	"repro/internal/cell"
	isim "repro/internal/sim"
	"repro/pktbuf"
)

// LatencyStats summarizes cell sojourn times (arrival slot → delivery
// slot). The paper's delay discussion (§7.2) is about exactly this
// quantity: the lookahead and latency registers put a floor under it.
type LatencyStats struct {
	// Count is the number of delivered cells measured.
	Count uint64
	// Min/Max/Mean are sojourn times in slots.
	Min, Max uint64
	Mean     float64
	// P50, P95, P99 are percentiles in slots.
	P50, P95, P99 uint64
}

// String implements fmt.Stringer.
func (l LatencyStats) String() string {
	return fmt.Sprintf("latency(slots): n=%d min=%d p50=%d mean=%.1f p95=%d p99=%d max=%d",
		l.Count, l.Min, l.P50, l.Mean, l.P95, l.P99, l.Max)
}

// LatencyTracker measures arrival→delivery sojourn per cell. It keys
// cells by (queue, seq), which the buffer guarantees unique and FIFO
// per queue; when attached to a buffer that already carries traffic,
// seed it with SeedNextSeq (see Runner.RunWithLatency, which does so
// automatically).
type LatencyTracker struct {
	inner *isim.LatencyTracker
}

// NewLatencyTracker returns an empty tracker.
func NewLatencyTracker() *LatencyTracker {
	return &LatencyTracker{inner: isim.NewLatencyTracker()}
}

// SeedNextSeq aligns the tracker with a buffer that already carries
// traffic: the next arrival observed for q is keyed with the given
// sequence number (Buffer.ArrivedSeq). Deliveries of older, untracked
// cells are then skipped instead of mispairing with measured arrivals.
func (t *LatencyTracker) SeedNextSeq(q pktbuf.Queue, seq uint64) {
	t.inner.SeedNextSeq(cell.QueueID(q), seq)
}

// OnArrival records a cell entering the buffer at slot now.
func (t *LatencyTracker) OnArrival(q pktbuf.Queue, now uint64) {
	t.inner.OnArrival(cell.QueueID(q), cell.Slot(now))
}

// OnDeliver records a delivery and accumulates its sojourn.
func (t *LatencyTracker) OnDeliver(c pktbuf.Cell, now uint64) {
	t.inner.OnDeliver(cell.Cell{Queue: cell.QueueID(c.Queue), Seq: c.Seq}, cell.Slot(now))
}

// InFlight returns the number of cells arrived but not yet delivered.
func (t *LatencyTracker) InFlight() int { return t.inner.InFlight() }

// Stats summarizes the collected samples.
func (t *LatencyTracker) Stats() LatencyStats {
	s := t.inner.Stats()
	return LatencyStats{
		Count: s.Count, Min: s.Min, Max: s.Max, Mean: s.Mean,
		P50: s.P50, P95: s.P95, P99: s.P99,
	}
}

// RunWithLatency runs the Runner for the given slots while measuring
// per-cell sojourn times. It is a convenience wrapper that installs
// the tracker around the runner's stimulus and delivery paths; cells
// already buffered when it starts are excluded from the samples.
func (r *Runner) RunWithLatency(slots uint64) (Result, LatencyStats, error) {
	if r.AllowDrops {
		// A dropped arrival consumes a tracker sequence number but not
		// a buffer one, desynchronizing the keying.
		return Result{}, LatencyStats{}, fmt.Errorf("sim: latency measurement requires AllowDrops=false: %w",
			pktbuf.ErrBadConfig)
	}
	tracker := NewLatencyTracker()
	buf := r.Buffer
	for q := 0; q < buf.Config().Queues; q++ {
		tracker.SeedNextSeq(pktbuf.Queue(q), buf.ArrivedSeq(pktbuf.Queue(q)))
	}
	prevDeliver := r.OnDeliver
	arr := r.Arrivals
	r.Arrivals = arrivalTap{inner: arr, tap: func(q pktbuf.Queue, now uint64) {
		if q != pktbuf.None {
			tracker.OnArrival(q, now)
		}
	}}
	r.OnDeliver = func(c pktbuf.Cell, bypassed bool) {
		// The callback fires after Tick has advanced the clock, so the
		// delivery slot is Now()-1 (arrivals are stamped pre-Tick).
		tracker.OnDeliver(c, buf.Now()-1)
		if prevDeliver != nil {
			prevDeliver(c, bypassed)
		}
	}
	defer func() {
		r.Arrivals = arr
		r.OnDeliver = prevDeliver
	}()
	res, err := r.Run(slots)
	return res, tracker.Stats(), err
}

// arrivalTap wraps an ArrivalProcess, observing each emission. It
// deliberately drops the batch fast path: RunWithLatency runs with
// batch size 1 so every arrival is observed in slot order.
type arrivalTap struct {
	inner ArrivalProcess
	tap   func(q pktbuf.Queue, now uint64)
}

func (a arrivalTap) Next(slot uint64) pktbuf.Queue {
	q := a.inner.Next(slot)
	a.tap(q, slot)
	return q
}
