package sim_test

import (
	"testing"

	"repro/pktbuf"
	"repro/pktbuf/sim"
)

func newBuffer(t testing.TB, queues int) *pktbuf.Buffer {
	t.Helper()
	buf, err := pktbuf.New(pktbuf.Config{
		Queues: queues, LineRate: pktbuf.OC768, Granularity: 2, Banks: 64,
	})
	if err != nil {
		t.Fatal(err)
	}
	return buf
}

func TestRunnerAdversarialClean(t *testing.T) {
	const queues = 8
	buf := newBuffer(t, queues)
	arr, err := sim.NewRoundRobinArrivals(queues, 1.0)
	if err != nil {
		t.Fatal(err)
	}
	req, err := sim.NewRoundRobinDrain(queues)
	if err != nil {
		t.Fatal(err)
	}
	warm := &sim.Runner{Buffer: buf, Arrivals: arr, Requests: sim.NewIdleRequests()}
	if _, err := warm.Run(512); err != nil {
		t.Fatal(err)
	}
	run := &sim.Runner{Buffer: buf, Arrivals: arr, Requests: req}
	res, err := run.Run(20000)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Clean() {
		t.Errorf("adversarial run not clean: %+v", res.Stats)
	}
	if res.Stats.Deliveries == 0 || res.Slots != 20000 {
		t.Errorf("result = %+v", res)
	}
}

// TestRunBatchMatchesRun drives two identical buffers with identical
// deterministic workloads through the per-slot and the batched path
// and requires identical statistics.
func TestRunBatchMatchesRun(t *testing.T) {
	const queues, slots = 8, 30000
	results := make([]sim.Result, 2)
	for i, batch := range []uint64{1, 256} {
		buf := newBuffer(t, queues)
		arr, _ := sim.NewUniformArrivals(queues, 0.8, 42)
		req, _ := sim.NewRoundRobinDrain(queues)
		r := &sim.Runner{Buffer: buf, Arrivals: arr, Requests: req}
		res, err := r.RunBatch(slots, batch)
		if err != nil {
			t.Fatalf("batch=%d: %v", batch, err)
		}
		results[i] = res
	}
	if results[0] != results[1] {
		t.Errorf("per-slot and batched runs diverge:\n%+v\n%+v", results[0], results[1])
	}
}

func TestDrainEmptiesBuffer(t *testing.T) {
	const queues = 4
	buf := newBuffer(t, queues)
	arr, _ := sim.NewRoundRobinArrivals(queues, 1.0)
	req, _ := sim.NewRoundRobinDrain(queues)
	fill := &sim.Runner{Buffer: buf, Arrivals: arr, Requests: sim.NewIdleRequests()}
	if _, err := fill.Run(256); err != nil {
		t.Fatal(err)
	}
	drain := &sim.Runner{Buffer: buf, Arrivals: arr, Requests: req}
	delivered, _, err := drain.Drain(100000)
	if err != nil {
		t.Fatal(err)
	}
	if delivered != 256 {
		t.Errorf("drained %d cells, want 256", delivered)
	}
	for q := pktbuf.Queue(0); int(q) < queues; q++ {
		if n := buf.Len(q); n != 0 {
			t.Errorf("queue %d still holds %d cells after drain", q, n)
		}
	}
	if buf.PendingRequests() != 0 {
		t.Error("requests still pending after drain")
	}
}

// TestOnDeliverFIFO checks per-queue FIFO delivery through the
// callback, and that delivered cells are safe to retain (value
// semantics).
func TestOnDeliverFIFO(t *testing.T) {
	const queues = 4
	buf := newBuffer(t, queues)
	arr, _ := sim.NewUniformArrivals(queues, 0.7, 7)
	req, _ := sim.NewLongestFirst(queues)
	next := make([]uint64, queues)
	r := &sim.Runner{
		Buffer: buf, Arrivals: arr, Requests: req,
		OnDeliver: func(c pktbuf.Cell, bypassed bool) {
			if c.Seq != next[c.Queue] {
				t.Fatalf("queue %d delivered seq %d, want %d", c.Queue, c.Seq, next[c.Queue])
			}
			next[c.Queue]++
		},
	}
	res, err := r.Run(20000)
	if err != nil {
		t.Fatal(err)
	}
	var total uint64
	for _, n := range next {
		total += n
	}
	if total != res.Stats.Deliveries || total == 0 {
		t.Errorf("callback saw %d deliveries, stats say %d", total, res.Stats.Deliveries)
	}
}

func TestRunWithLatency(t *testing.T) {
	const queues = 4
	buf := newBuffer(t, queues)
	arr, _ := sim.NewUniformArrivals(queues, 0.5, 3)
	req, _ := sim.NewRoundRobinDrain(queues)
	r := &sim.Runner{Buffer: buf, Arrivals: arr, Requests: req}
	res, lat, err := r.RunWithLatency(20000)
	if err != nil {
		t.Fatal(err)
	}
	if lat.Count == 0 || lat.Count != res.Stats.Deliveries {
		t.Errorf("latency count %d, deliveries %d", lat.Count, res.Stats.Deliveries)
	}
	if lat.Min > lat.P50 || lat.P50 > lat.P99 || lat.P99 > lat.Max {
		t.Errorf("percentiles out of order: %v", lat)
	}
	// Sojourns are arrival-slot → delivery-slot; a same-slot bypass
	// cut-through (Min == 0) is legal, but the bulk of the traffic
	// rides the request pipeline, so the median cannot beat it.
	if lat.P50 == 0 {
		t.Errorf("median sojourn 0 slots: %v", lat)
	}
}

// TestRunWithLatencySeesBacklog attaches the latency measurement to a
// buffer with a standing backlog: measured cells queue behind it, so
// their sojourn must exceed the fixed request pipeline. (A tracker
// that keys arrivals from seq 0 instead of the buffer's numbering
// pairs them with the backlog's deliveries and reports exactly the
// pipeline floor, silently cancelling the queueing delay.)
func TestRunWithLatencySeesBacklog(t *testing.T) {
	const queues = 8
	buf := newBuffer(t, queues)
	arr, _ := sim.NewRoundRobinArrivals(queues, 1.0)
	req, _ := sim.NewRoundRobinDrain(queues)
	warm := &sim.Runner{Buffer: buf, Arrivals: arr, Requests: sim.NewIdleRequests()}
	if _, err := warm.Run(1024); err != nil { // 128-cell backlog per queue
		t.Fatal(err)
	}
	r := &sim.Runner{Buffer: buf, Arrivals: arr, Requests: req}
	res, lat, err := r.RunWithLatency(20000)
	if err != nil {
		t.Fatal(err)
	}
	if lat.Count == 0 {
		t.Fatal("no sojourns measured")
	}
	floor := uint64(buf.Sizing().DelaySlots)
	if lat.P50 <= floor {
		t.Errorf("median sojourn %d slots does not see the %d-cell backlog (pipeline floor %d): %v (stats %+v)",
			lat.P50, 1024/queues, floor, lat, res.Stats)
	}
}

func TestGeneratorValidation(t *testing.T) {
	if _, err := sim.NewUniformArrivals(0, 0.5, 1); err == nil {
		t.Error("zero queues accepted")
	}
	if _, err := sim.NewRoundRobinArrivals(4, 1.5); err == nil {
		t.Error("load > 1 accepted")
	}
	if _, err := sim.NewHotspotArrivals(4, 0.5, -0.1, 1); err == nil {
		t.Error("negative hotFrac accepted")
	}
	if _, err := sim.NewBurstyArrivals(4, 0.5, 8, 1); err == nil {
		t.Error("meanOn < 1 accepted")
	}
	if _, err := sim.NewRoundRobinDrain(-2); err == nil {
		t.Error("negative queues accepted")
	}
	if _, err := sim.NewUniformRequests(4, 2, 1); err == nil {
		t.Error("rate > 1 accepted")
	}
	if _, err := sim.NewLongestFirst(0); err == nil {
		t.Error("zero queues accepted")
	}
	if _, err := sim.NewPermutationDrain(nil); err == nil {
		t.Error("empty permutation accepted")
	}
	if _, err := (&sim.Runner{}).Run(10); err == nil {
		t.Error("runner without buffer/generators accepted")
	}
}

// TestBatchArrivalEquivalence: every generator's NextBatch must be
// equivalent to calling Next per slot.
func TestBatchArrivalEquivalence(t *testing.T) {
	const queues, n = 8, 4096
	mk := func() []sim.ArrivalProcess {
		u1, _ := sim.NewUniformArrivals(queues, 0.6, 11)
		rr, _ := sim.NewRoundRobinArrivals(queues, 0.9)
		sq := sim.NewSingleQueueArrivals(3)
		return []sim.ArrivalProcess{u1, rr, sq}
	}
	ref, batched := mk(), mk()
	for i := range ref {
		ba, ok := batched[i].(sim.BatchArrivalProcess)
		if !ok {
			t.Fatalf("generator %d does not implement BatchArrivalProcess", i)
		}
		got := make([]pktbuf.Queue, n)
		ba.NextBatch(0, got)
		for s := 0; s < n; s++ {
			if want := ref[i].Next(uint64(s)); got[s] != want {
				t.Fatalf("generator %d slot %d: batch %d, per-slot %d", i, s, got[s], want)
			}
		}
	}
}
