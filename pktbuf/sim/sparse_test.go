package sim_test

import (
	"fmt"
	"testing"

	"repro/pktbuf"
	"repro/pktbuf/sim"
)

// sparseBuffer builds a short-pipeline buffer so idle gaps at low
// load actually outlast the request pipeline.
func sparseBuffer(t testing.TB, queues int) *pktbuf.Buffer {
	t.Helper()
	buf, err := pktbuf.New(pktbuf.Config{
		Queues: queues, LineRate: pktbuf.OC3072, Granularity: 4,
		Banks: 64, Lookahead: 8, LatencySlots: 24,
	})
	if err != nil {
		t.Fatal(err)
	}
	return buf
}

// densePublicArr hides the public generator's fast paths so the
// Runner takes the per-slot reference loop.
type densePublicArr struct{ inner sim.ArrivalProcess }

func (d densePublicArr) Next(slot uint64) pktbuf.Queue { return d.inner.Next(slot) }

// unstablePublicReq hides the policy's IdleStable marker.
type unstablePublicReq struct{ inner sim.RequestPolicy }

func (u unstablePublicReq) Next(slot uint64, v sim.View) pktbuf.Queue { return u.inner.Next(slot, v) }

// TestPublicRunnerSparseEquivalence pins the public Runner's
// fast-forward path to its per-slot reference loop: identical
// Bernoulli workloads must yield identical deliveries, statistics and
// clocks, and the sparse run must actually skip slots.
func TestPublicRunnerSparseEquivalence(t *testing.T) {
	const slots = 60000
	run := func(dense bool) (sim.Result, []string, *pktbuf.Buffer) {
		buf := sparseBuffer(t, 16)
		arr, err := sim.NewBernoulliArrivals(16, 0.02, 11)
		if err != nil {
			t.Fatal(err)
		}
		req, err := sim.NewRoundRobinDrain(16)
		if err != nil {
			t.Fatal(err)
		}
		if dense {
			arr = densePublicArr{arr}
			req = unstablePublicReq{req}
		}
		var log []string
		r := &sim.Runner{Buffer: buf, Arrivals: arr, Requests: req,
			OnDeliver: func(c pktbuf.Cell, bypassed bool) {
				log = append(log, fmt.Sprintf("%d:%d:%d:%v", buf.Now()-1, c.Queue, c.Seq, bypassed))
			}}
		res, err := r.RunBatch(slots, 0)
		if err != nil {
			t.Fatalf("run (dense=%v): %v", dense, err)
		}
		return res, log, buf
	}
	dres, dlog, dbuf := run(true)
	sres, slog, sbuf := run(false)
	if dbuf.Now() != sbuf.Now() {
		t.Errorf("clock diverges: dense %d, sparse %d", dbuf.Now(), sbuf.Now())
	}
	ds, ss := dres.Stats, sres.Stats
	if ss.FastForwardedSlots == 0 {
		t.Error("sparse run never fast-forwarded")
	}
	ds.FastForwardedSlots, ss.FastForwardedSlots = 0, 0
	if ds != ss {
		t.Errorf("stats diverge:\ndense  %+v\nsparse %+v", ds, ss)
	}
	if len(dlog) != len(slog) {
		t.Fatalf("delivery counts diverge: dense %d, sparse %d", len(dlog), len(slog))
	}
	for i := range dlog {
		if dlog[i] != slog[i] {
			t.Fatalf("delivery %d diverges: dense %s, sparse %s", i, dlog[i], slog[i])
		}
	}
}

// TestPublicFastForwardDirect exercises the façade's Quiescent and
// FastForward directly: a fresh buffer jumps, a busy one refuses, and
// the skipped slots are accounted in Stats.
func TestPublicFastForwardDirect(t *testing.T) {
	buf := sparseBuffer(t, 8)
	if !buf.Quiescent() {
		t.Fatal("fresh buffer must be quiescent")
	}
	if got := buf.FastForward(1000); got != 1000 {
		t.Fatalf("FastForward skipped %d, want 1000", got)
	}
	if buf.Now() != 1000 {
		t.Errorf("Now() = %d, want 1000", buf.Now())
	}
	if got := buf.Stats().FastForwardedSlots; got != 1000 {
		t.Errorf("FastForwardedSlots = %d, want 1000", got)
	}
	if _, err := buf.Tick(pktbuf.Input{Arrival: 3, Request: pktbuf.None}); err != nil {
		t.Fatal(err)
	}
	if _, err := buf.Tick(pktbuf.Input{Arrival: pktbuf.None, Request: 3}); err != nil {
		t.Fatal(err)
	}
	if buf.Quiescent() {
		t.Error("buffer with an in-flight request must not be quiescent")
	}
	if got := buf.FastForward(10); got != 0 {
		t.Errorf("busy FastForward skipped %d, want 0", got)
	}
}

// TestPublicDrainLastSlot pins the new Drain return: zero slots spent
// on an empty buffer, and the exact slot of the final delivery.
func TestPublicDrainLastSlot(t *testing.T) {
	buf := sparseBuffer(t, 4)
	req, _ := sim.NewRoundRobinDrain(4)
	r := &sim.Runner{Buffer: buf, Arrivals: sim.NewSingleQueueArrivals(0), Requests: req}

	start := buf.Now()
	n, last, err := r.Drain(1 << 20)
	if err != nil {
		t.Fatal(err)
	}
	if n != 0 || last != 0 || buf.Now() != start {
		t.Errorf("empty drain: delivered %d, lastSlot %d, spent %d slots; want 0, 0, 0",
			n, last, buf.Now()-start)
	}

	r.Requests = sim.NewIdleRequests()
	if _, err := r.Run(64); err != nil {
		t.Fatal(err)
	}
	var observed uint64
	r.OnDeliver = func(pktbuf.Cell, bool) { observed = buf.Now() - 1 }
	r.Requests = req
	n, last, err = r.Drain(1 << 20)
	if err != nil {
		t.Fatal(err)
	}
	if n != 64 {
		t.Errorf("drained %d, want 64", n)
	}
	if last != observed {
		t.Errorf("lastSlot %d, observed %d", last, observed)
	}
	if !buf.Quiescent() {
		t.Error("buffer not quiescent after drain")
	}
}
